package stats

import (
	"math/rand"
	"strings"
	"testing"

	"norman/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestResettableCounter(t *testing.T) {
	var c ResettableCounter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != sim.Microsecond || h.Max() != 100*sim.Microsecond {
		t.Fatalf("min/max: %v %v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 50*sim.Microsecond || mean > 51*sim.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
	p50 := h.P50()
	if p50 < 45*sim.Microsecond || p50 > 55*sim.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.P99()
	if p99 < 94*sim.Microsecond || p99 > 100*sim.Microsecond {
		t.Fatalf("p99 = %v", p99)
	}
}

func TestHistogramMatchesExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var h Histogram
	samples := make([]sim.Duration, 0, 5000)
	for i := 0; i < 5000; i++ {
		d := sim.Duration(rng.Intn(1_000_000)+1) * sim.Nanosecond
		h.Observe(d)
		samples = append(samples, d)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := Summary(samples, q)
		approx := h.Quantile(q)
		ratio := float64(approx) / float64(exact)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("q=%v: approx %v vs exact %v (ratio %.3f)", q, approx, exact, ratio)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.P50() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram")
	}
	h.Observe(-5) // clamps to zero
	if h.Min() != 0 {
		t.Fatalf("negative clamp: %v", h.Min())
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("reset")
	}
}

// TestHistogramEmptyQuantiles pins the contract for a histogram with no
// observations: every quantile, and every summary statistic, is exactly
// zero — no NaNs, no stale minima.
func TestHistogramEmptyQuantiles(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, v)
		}
	}
	if h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty sum/min/max: %v %v %v", h.Sum(), h.Min(), h.Max())
	}
}

// TestHistogramSingleSample: with one observation, every quantile collapses
// to that sample (interpolation must clamp to [Min, Max], not report bucket
// edges).
func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	d := 137 * sim.Microsecond
	h.Observe(d)
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != d {
			t.Fatalf("single-sample Quantile(%v) = %v, want %v", q, v, d)
		}
	}
	if h.Mean() != d || h.Sum() != d || h.Min() != d || h.Max() != d {
		t.Fatalf("single-sample stats: mean=%v sum=%v min=%v max=%v", h.Mean(), h.Sum(), h.Min(), h.Max())
	}
}

// TestHistogramMaxBucketOverflow: observations past the top bucket's range
// (~18 s at 512 log buckets) all land in the final bucket; quantiles stay
// finite and clamp to the true observed maximum, and Sum stays exact.
func TestHistogramMaxBucketOverflow(t *testing.T) {
	var h Histogram
	huge := 100 * sim.Second // far beyond bucketLow(nBuckets-1)
	h.Observe(huge)
	h.Observe(2 * huge)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 2*huge {
		t.Fatalf("max = %v", h.Max())
	}
	if v := h.Quantile(0.999); v < huge || v > 2*huge {
		t.Fatalf("overflow quantile %v outside [%v, %v]", v, huge, 2*huge)
	}
	if h.Sum() != 3*huge {
		t.Fatalf("sum = %v", h.Sum())
	}
	// The interpolated p50 must also never exceed the observed range even
	// though the containing bucket's nominal upper edge does.
	if v := h.P50(); v < huge || v > 2*huge {
		t.Fatalf("p50 %v outside observed range", v)
	}
}

func TestThroughputAndRate(t *testing.T) {
	// 125 MB over 10 ms = 100 Gbps.
	g := Throughput(125_000_000, 10*sim.Millisecond)
	if g < 99.9 || g > 100.1 {
		t.Fatalf("throughput = %v", g)
	}
	r := Rate(1000, sim.Duration(sim.Second))
	if r != 1000 {
		t.Fatalf("rate = %v", r)
	}
	if Throughput(1, 0) != 0 || Rate(1, 0) != 0 {
		t.Fatal("zero interval")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("longer-name", 123.456)
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "alpha") {
		t.Fatalf("render: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2
		if len(lines) != 5 {
			t.Fatalf("line count %d: %q", len(lines), out)
		}
	}
	// Columns align: header and rows share the first column width.
	if !strings.Contains(out, "longer-name  123.5") && !strings.Contains(out, "longer-name  123.46") {
		t.Fatalf("float formatting: %q", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.0)
	tb.AddRow(0.1234)
	tb.AddRow(12345.6)
	out := tb.String()
	for _, want := range []string{"3", "0.1234", "12345.6"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}
