// Package wire models the network beyond the host's port: a set of remote
// endpoints behind the link, each with its own address and behavior. The
// host under test has exactly one 100G port (as in the paper's server); the
// Network demultiplexes its egress frames to endpoints by destination
// address and lets endpoints inject traffic back.
//
// Endpoints are abstract — they carry no cost model, because everything the
// reproduction measures happens on the host side of the wire.
package wire

import (
	"fmt"

	"norman/internal/arch"
	"norman/internal/packet"
	"norman/internal/sim"
)

// Handler consumes a frame addressed to an endpoint. Responses go back
// through Endpoint.Send.
type Handler func(ep *Endpoint, p *packet.Packet, at sim.Time)

// Endpoint is one remote host on the network.
type Endpoint struct {
	net *Network

	IP      packet.IPv4
	MAC     packet.MAC
	Handler Handler

	Received uint64
	Sent     uint64
}

// Send injects a frame from this endpoint toward the host under test,
// after one wire propagation delay (the link is symmetric).
func (ep *Endpoint) Send(p *packet.Packet) {
	ep.Sent++
	w := ep.net.a.World()
	w.Eng.After(sim.Duration(w.Model.WireLatency), func() {
		ep.net.a.DeliverWire(p)
	})
}

// SendUDP builds and injects a UDP datagram from this endpoint to the
// host's (hostPort) with the given source port.
func (ep *Endpoint) SendUDP(srcPort, hostPort uint16, payload int) {
	w := ep.net.a.World()
	ep.Send(packet.NewUDP(ep.MAC, w.HostMAC, ep.IP, w.HostIP, srcPort, hostPort, payload))
}

// Network is the far side of the host's link.
type Network struct {
	a    arch.Arch
	byIP map[packet.IPv4]*Endpoint

	// Unrouted counts egress frames addressed to no endpoint (they vanish
	// into the fabric, as on a real network).
	Unrouted uint64
	// Broadcasts counts broadcast frames (delivered to every endpoint).
	Broadcasts uint64
}

// NewNetwork installs itself as the architecture's wire peer and returns
// the empty network.
func NewNetwork(a arch.Arch) *Network {
	n := &Network{a: a, byIP: map[packet.IPv4]*Endpoint{}}
	a.World().Peer = n.recv
	return n
}

// AddEndpoint attaches a remote host. The handler may be nil (sink).
func (n *Network) AddEndpoint(ip packet.IPv4, mac packet.MAC, h Handler) *Endpoint {
	ep := &Endpoint{net: n, IP: ip, MAC: mac, Handler: h}
	n.byIP[ip] = ep
	return ep
}

// Endpoint looks up a remote host by address.
func (n *Network) Endpoint(ip packet.IPv4) (*Endpoint, bool) {
	ep, ok := n.byIP[ip]
	return ep, ok
}

// recv is the host's egress arriving on the fabric.
func (n *Network) recv(p *packet.Packet, at sim.Time) {
	// Broadcast (ARP who-has): every endpoint sees it; endpoints whose IP
	// is the ARP target answer with a reply, as real hosts do.
	if p.Eth.Dst.IsBroadcast() {
		n.Broadcasts++
		if p.ARP != nil && p.ARP.Op == packet.ARPRequest {
			if ep, ok := n.byIP[p.ARP.TargetIP]; ok {
				ep.Received++
				ep.Send(packet.NewARPReply(ep.MAC, ep.IP, p.ARP.SenderHW, p.ARP.SenderIP))
				return
			}
		}
		for _, ep := range n.byIP {
			ep.Received++
			if ep.Handler != nil {
				ep.Handler(ep, p, at)
			}
		}
		return
	}

	dst := destinationIP(p)
	ep, ok := n.byIP[dst]
	if !ok {
		n.Unrouted++
		return
	}
	ep.Received++
	// Endpoints answer ICMP echo to their address natively, like any host.
	if p.IsEchoRequestTo(ep.IP) {
		ep.Send(packet.EchoReplyTo(p))
		return
	}
	if ep.Handler != nil {
		ep.Handler(ep, p, at)
	}
}

func destinationIP(p *packet.Packet) packet.IPv4 {
	switch {
	case p.IP != nil:
		return p.IP.Dst
	case p.ARP != nil:
		return p.ARP.TargetIP
	default:
		return 0
	}
}

// EchoUDP is a Handler echoing UDP datagrams back to their sender.
func EchoUDP(ep *Endpoint, p *packet.Packet, _ sim.Time) {
	if p.UDP == nil || p.IP == nil {
		return
	}
	ep.Send(packet.NewUDP(ep.MAC, p.Eth.Src, p.IP.Dst, p.IP.Src,
		p.UDP.DstPort, p.UDP.SrcPort, p.PayloadLen))
}

// ClientFleet provisions count endpoints with consecutive addresses
// (base+1 ... base+count in the last two octets) and the given handler,
// returning them in order.
func (n *Network) ClientFleet(count int, handler Handler) ([]*Endpoint, error) {
	if count <= 0 || count > 60000 {
		return nil, fmt.Errorf("wire: fleet size %d out of range", count)
	}
	eps := make([]*Endpoint, 0, count)
	for i := 1; i <= count; i++ {
		ip := packet.MakeIP(10, 1, byte(i>>8), byte(i))
		mac := packet.MAC{0x02, 0x10, 0x00, 0x00, byte(i >> 8), byte(i)}
		eps = append(eps, n.AddEndpoint(ip, mac, handler))
	}
	return eps, nil
}
