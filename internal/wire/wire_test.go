package wire

import (
	"testing"

	"norman/internal/arch"
	"norman/internal/packet"
	"norman/internal/sim"
)

func TestNetworkRoutesByDestination(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()
	n := NewNetwork(a)
	e1 := n.AddEndpoint(packet.MakeIP(10, 1, 0, 1), packet.MAC{0x02, 1}, nil)
	e2 := n.AddEndpoint(packet.MakeIP(10, 1, 0, 2), packet.MAC{0x02, 2}, nil)

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "p")
	flow1 := packet.FlowKey{Src: w.HostIP, Dst: e1.IP, SrcPort: 1000, DstPort: 7, Proto: packet.ProtoUDP}
	c1, err := a.Connect(proc, flow1)
	if err != nil {
		t.Fatal(err)
	}
	a.Send(c1, packet.NewUDP(w.HostMAC, e1.MAC, flow1.Src, flow1.Dst, 1000, 7, 64))
	// And one to nowhere.
	a.Send(c1, packet.NewUDP(w.HostMAC, packet.MAC{9}, w.HostIP, packet.MakeIP(10, 9, 9, 9), 1000, 7, 64))
	w.Eng.Run()

	if e1.Received != 1 || e2.Received != 0 {
		t.Fatalf("routing: e1=%d e2=%d", e1.Received, e2.Received)
	}
	if n.Unrouted != 1 {
		t.Fatalf("unrouted = %d", n.Unrouted)
	}
}

func TestEndpointEchoAndFleet(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()
	n := NewNetwork(a)
	eps, err := n.ClientFleet(8, EchoUDP)
	if err != nil {
		t.Fatal(err)
	}
	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "p")

	var got int
	a.SetDeliver(func(*arch.Conn, *packet.Packet, sim.Time) { got++ })
	for i, ep := range eps {
		flow := packet.FlowKey{Src: w.HostIP, Dst: ep.IP,
			SrcPort: uint16(1000 + i), DstPort: 7, Proto: packet.ProtoUDP}
		c, err := a.Connect(proc, flow)
		if err != nil {
			t.Fatal(err)
		}
		a.Send(c, packet.NewUDP(w.HostMAC, ep.MAC, flow.Src, flow.Dst, flow.SrcPort, 7, 100))
	}
	w.Eng.Run()
	if got != 8 {
		t.Fatalf("echoes = %d", got)
	}
}

// TestHostARPResponderByArchitecture: a remote endpoint ARPs for the host.
// Under OS-integrated interposition the kernel answers; under raw bypass
// and the hypervisor switch, nobody does — the §2 debugging scenario's
// other half (inbound ARP is as unowned as outbound).
func TestHostARPResponderByArchitecture(t *testing.T) {
	expect := map[string]bool{
		"kernelstack": true,
		"sidecar":     true,
		"kopi":        true,
		"bypass":      false,
		"hypervisor":  false,
	}
	for name, want := range expect {
		a := arch.New(name, arch.WorldConfig{})
		w := a.World()
		n := NewNetwork(a)
		ep := n.AddEndpoint(packet.MakeIP(10, 1, 0, 5), packet.MAC{0x02, 5}, nil)

		gotReply := false
		ep.Handler = func(_ *Endpoint, p *packet.Packet, _ sim.Time) {
			if p.ARP != nil && p.ARP.Op == packet.ARPReply && p.ARP.SenderIP == w.HostIP {
				gotReply = true
			}
		}
		ep.Send(packet.NewARPRequest(ep.MAC, ep.IP, w.HostIP))
		w.Eng.Run()
		if gotReply != want {
			t.Errorf("%s: host ARP reply = %v, want %v", name, gotReply, want)
		}
	}
}

// TestEndpointAnswersHostARP: the network side answers the host's own ARP
// requests (who-has endpoint-IP), so OS-integrated stacks can resolve peers.
func TestEndpointAnswersHostARP(t *testing.T) {
	a := arch.New("kernelstack", arch.WorldConfig{})
	w := a.World()
	n := NewNetwork(a)
	ep := n.AddEndpoint(packet.MakeIP(10, 1, 0, 9), packet.MAC{0x02, 9}, nil)

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "p")
	c, err := a.Connect(proc, packet.FlowKey{Src: w.HostIP, Dst: ep.IP, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP})
	if err != nil {
		t.Fatal(err)
	}
	// The kernel ARPs for the endpoint (modeled as an app-initiated probe
	// through the stack, which stamps and forwards it).
	a.Send(c, packet.NewARPRequest(w.HostMAC, w.HostIP, ep.IP))
	w.Eng.Run()

	if mac, ok := w.Kern.ARP().Lookup(ep.IP); !ok || mac != ep.MAC {
		t.Fatalf("kernel should learn the endpoint's MAC from its reply: %v %v", mac, ok)
	}
}

// TestPingByArchitecture: the admin's oldest tool. The kernel can originate
// and receive echoes only where it still touches the dataplane.
func TestPingByArchitecture(t *testing.T) {
	expect := map[string]bool{
		"kernelstack": true,
		"sidecar":     true,
		"kopi":        true,
		"bypass":      false,
		"hypervisor":  false,
	}
	for name, want := range expect {
		a := arch.New(name, arch.WorldConfig{})
		w := a.World()
		n := NewNetwork(a)
		ep := n.AddEndpoint(packet.MakeIP(10, 1, 0, 7), packet.MAC{0x02, 7}, nil)

		var rtt sim.Duration
		var ok, completed bool
		err := a.Ping(ep.IP, 56, func(d sim.Duration, o bool) {
			rtt, ok, completed = d, o, true
		})
		w.Eng.Run()

		if want {
			if err != nil {
				t.Errorf("%s: ping should be supported: %v", name, err)
				continue
			}
			if !completed || !ok {
				t.Errorf("%s: ping never completed (ok=%v)", name, ok)
				continue
			}
			// RTT covers at least two wire propagations (2µs each way).
			if rtt < 4*sim.Microsecond {
				t.Errorf("%s: rtt %v below physics", name, rtt)
			}
		} else if err == nil {
			t.Errorf("%s: ping should be unsupported", name)
		}
	}
}

// TestPingTimesOutToNowhere: a ping to an address nobody owns expires.
func TestPingTimesOutToNowhere(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{})
	w := a.World()
	NewNetwork(a)
	var completed, ok bool
	if err := a.Ping(packet.MakeIP(10, 9, 9, 9), 56, func(_ sim.Duration, o bool) {
		completed, ok = true, o
	}); err != nil {
		t.Fatal(err)
	}
	w.Eng.Run()
	if !completed || ok {
		t.Fatalf("ping to nowhere should time out: completed=%v ok=%v", completed, ok)
	}
}
