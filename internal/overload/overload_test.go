package overload

import (
	"errors"
	"reflect"
	"testing"

	"norman/internal/arch"
	"norman/internal/mem"
	"norman/internal/sim"
)

func newWorld(t *testing.T) (arch.Arch, *arch.World) {
	t.Helper()
	a := arch.New("kopi", arch.WorldConfig{RingSize: 16})
	return a, a.World()
}

// TestAdmissionBudgets walks every typed rejection path: the per-tenant cap,
// the DDIO ring budget, and the release/re-admit cycle. Each rejection must
// wrap ErrAdmission, carry the exhausted Resource, and charge nothing.
func TestAdmissionBudgets(t *testing.T) {
	_, w := newWorld(t)
	// Budget exactly three connections' worth of descriptor lines.
	share := float64(3*16*64) / float64(w.LLC.DDIOBytes())
	g := NewGovernor(w.Eng, w.NIC, w.LLC, Config{DDIOShare: share, MaxConnsPerTenant: 2})

	if used, budget := g.RingBudget(); used != 0 || budget != 3*16*64 {
		t.Fatalf("budget = %d/%d, want 0/%d", used, budget, 3*16*64)
	}
	// Tenant 1 fills its cap.
	if err := g.AdmitConn(1); err != nil {
		t.Fatal(err)
	}
	if err := g.AdmitConn(1); err != nil {
		t.Fatal(err)
	}
	err := g.AdmitConn(1)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("over-cap admit = %v, want ErrAdmission", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Resource != ResourceTenantConns || ae.Tenant != 1 || ae.Used != 2 || ae.Budget != 2 {
		t.Fatalf("tenant rejection = %+v", ae)
	}
	// Tenant 2 takes the last budget slot; the next admit exhausts the DDIO
	// share.
	if err := g.AdmitConn(2); err != nil {
		t.Fatal(err)
	}
	err = g.AdmitConn(2)
	if !errors.As(err, &ae) || ae.Resource != ResourceRingDDIO {
		t.Fatalf("over-budget admit = %v, want ring_ddio rejection", err)
	}
	if used, budget := g.RingBudget(); used != budget {
		t.Fatalf("rejections must not charge: used %d budget %d", used, budget)
	}
	// Release frees both the tenant slot and the ring bytes.
	g.ReleaseConn(1)
	if err := g.AdmitConn(2); err != nil {
		t.Fatalf("admit after release = %v", err)
	}
	snap := g.Snapshot()
	if snap.Admitted != 4 || snap.RejectedTenant != 1 || snap.RejectedDDIO != 1 || snap.RejectedLoad != 0 {
		t.Fatalf("counter snapshot = %+v", snap)
	}
	if g.Rejected() != 2 {
		t.Fatalf("Rejected() = %d, want 2", g.Rejected())
	}
}

// TestNoCacheModelUnlimited: without an LLC (the ablation), ring admission
// never rejects.
func TestNoCacheModelUnlimited(t *testing.T) {
	a := arch.New("kopi", arch.WorldConfig{RingSize: 16, NoLLC: true})
	w := a.World()
	g := NewGovernor(w.Eng, w.NIC, nil, Config{})
	for i := 0; i < 10000; i++ {
		if err := g.AdmitConn(uint32(i % 7)); err != nil {
			t.Fatalf("admit %d = %v", i, err)
		}
	}
}

// TestWatchdogHysteresis drives the three-state machine through a full
// pressure cycle: ring occupancy over the high watermark escalates to
// pressured after EscalateAfter samples; draining under the low watermark
// releases only after ClearAfter calm samples; the dead band between the
// watermarks holds state (no oscillation).
func TestWatchdogHysteresis(t *testing.T) {
	a, w := newWorld(t)
	g := NewGovernor(w.Eng, w.NIC, w.LLC, Config{
		SampleEvery:   10 * sim.Microsecond,
		EscalateAfter: 2,
		ClearAfter:    3,
	})

	u := w.Kern.AddUser(1, "u")
	proc := w.Kern.Spawn(u.UID, "app")
	conn, err := a.Connect(proc, w.Flow(4000, 7))
	if err != nil {
		t.Fatal(err)
	}
	c := conn.NC
	if c == nil {
		t.Fatal("no NIC conn")
	}
	// OpenConn must have armed default watermarks at 3/4 and 1/4 of the ring.
	if hi, lo := c.RX.Watermarks(); hi != 12 || lo != 4 {
		t.Fatalf("default watermarks = %d/%d, want 12/4", hi, lo)
	}

	// Pin occupancy above the high watermark and let the watchdog sample.
	for i := 0; i < 13; i++ {
		if err := c.RX.Push(mem.Desc{}); err != nil {
			t.Fatal(err)
		}
	}
	if !c.RX.AboveHigh() {
		t.Fatal("13/16 must be above the 12-descriptor high watermark")
	}
	g.Start(0)
	w.Eng.RunUntil(sim.Time(15 * sim.Microsecond))
	if g.State() != StateOK {
		t.Fatalf("one hot sample must not escalate yet: %v", g.State())
	}
	w.Eng.RunUntil(sim.Time(55 * sim.Microsecond))
	if g.State() != StatePressured {
		t.Fatalf("sustained occupancy must reach pressured: %v", g.State())
	}

	// Drain into the dead band (between low and high): state must hold.
	for c.RX.Len() > 8 {
		if _, err := c.RX.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	w.Eng.RunUntil(sim.Time(200 * sim.Microsecond))
	if g.State() != StatePressured {
		t.Fatalf("dead-band occupancy must hold pressured (hysteresis): %v", g.State())
	}

	// Drain under the low watermark: release after ClearAfter calm samples.
	for c.RX.Len() > 0 {
		if _, err := c.RX.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	w.Eng.RunUntil(sim.Time(215 * sim.Microsecond))
	if g.State() != StatePressured {
		t.Fatalf("one calm sample must not release yet: %v", g.State())
	}
	w.Eng.RunUntil(sim.Time(300 * sim.Microsecond))
	if g.State() != StateOK {
		t.Fatalf("sustained calm must release: %v", g.State())
	}
	if snap := g.Snapshot(); snap.Transitions != 2 {
		t.Fatalf("transitions = %d, want exactly 2 (up, down)", snap.Transitions)
	}
	g.Stop()
}

// TestWatchdogSaturatesOnDrops: new NIC drops between samples jump the raw
// reading straight to saturated; admission then rejects with the
// ingress_fifo resource until the state clears.
func TestWatchdogSaturatesOnDrops(t *testing.T) {
	_, w := newWorld(t)
	g := NewGovernor(w.Eng, w.NIC, w.LLC, Config{
		SampleEvery:   10 * sim.Microsecond,
		EscalateAfter: 1,
		ClearAfter:    2,
	})
	var edges []bool
	g.Subscribe(func(on bool) { edges = append(edges, on) })

	// Bump the NIC's drop counter before every sample for a while: the state
	// must escalate one level per sample (ok -> pressured -> saturated), and
	// the subscriber must see exactly one engage edge.
	for i := 1; i <= 6; i++ {
		w.Eng.At(sim.Time(sim.Duration(i)*10*sim.Microsecond-sim.Microsecond), func() {
			w.NIC.RxFifoDrop++
		})
	}
	g.Start(0)
	w.Eng.RunUntil(sim.Time(65 * sim.Microsecond))
	if g.State() != StateSaturated {
		t.Fatalf("sustained drops must saturate: %v", g.State())
	}
	if err := g.AdmitConn(9); !errors.Is(err, ErrAdmission) {
		t.Fatalf("saturated admit = %v, want rejection", err)
	}
	var ae *AdmissionError
	if err := g.AdmitConn(9); !errors.As(err, &ae) || ae.Resource != ResourceIngressFIFO {
		t.Fatalf("saturated rejection resource = %+v", ae)
	}

	// Quiet: drops stop, occupancy is zero -> de-escalate one level per
	// ClearAfter window, with exactly one release edge at the end.
	w.Eng.RunUntil(sim.Time(300 * sim.Microsecond))
	if g.State() != StateOK {
		t.Fatalf("quiet watchdog must recover: %v", g.State())
	}
	if len(edges) != 2 || !edges[0] || edges[1] {
		t.Fatalf("backpressure edges = %v, want [true false] (edge-triggered, not per-transition)", edges)
	}
	if snap := g.Snapshot(); snap.Signals != 2 || snap.RejectedLoad != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	g.Stop()
}

// TestShedPolicy: while saturated, the installed policy sheds only classes
// below the heaviest weight, counts every shed, and stops shedding the
// moment the state clears.
func TestShedPolicy(t *testing.T) {
	a, w := newWorld(t)
	g := NewGovernor(w.Eng, w.NIC, w.LLC, Config{
		SampleEvery:   10 * sim.Microsecond,
		EscalateAfter: 1,
		ClearAfter:    2,
	})

	u1 := w.Kern.AddUser(1, "hi")
	u2 := w.Kern.AddUser(2, "lo")
	pHi := w.Kern.Spawn(u1.UID, "hi")
	pLo := w.Kern.Spawn(u2.UID, "lo")
	fHi := w.Flow(4001, 7)
	fLo := w.Flow(4002, 7)
	cHi, err := a.Connect(pHi, fHi)
	if err != nil {
		t.Fatal(err)
	}
	cLo, err := a.Connect(pLo, fLo)
	if err != nil {
		t.Fatal(err)
	}
	// UID 1 is class 1 (weight 8, protected); UID 2 is class 2 (weight 1).
	g.InstallShedding(func(uid uint32) uint32 { return uid }, map[uint32]float64{1: 8, 2: 1})

	// Saturate via injected drops, as in the watchdog test.
	for i := 1; i <= 30; i++ {
		w.Eng.At(sim.Time(sim.Duration(i)*10*sim.Microsecond-sim.Microsecond), func() {
			w.NIC.RxFifoDrop++
		})
	}
	g.Start(0)
	w.Eng.RunUntil(sim.Time(50 * sim.Microsecond))
	if g.State() != StateSaturated {
		t.Fatalf("setup: want saturated, got %v", g.State())
	}

	// While saturated: low class shed at the MAC, high class delivered.
	for i := 0; i < 4; i++ {
		a.DeliverWire(w.UDPFrom(fHi, 128))
		a.DeliverWire(w.UDPFrom(fLo, 128))
	}
	w.Eng.RunUntil(sim.Time(250 * sim.Microsecond))
	nHi, nLo := cHi.NC, cLo.NC
	if w.NIC.RxShed != 4 || g.ShedPackets() != 4 {
		t.Fatalf("shed = nic %d / gov %d, want 4", w.NIC.RxShed, g.ShedPackets())
	}
	if nLo.RxDelivered != 0 {
		t.Fatalf("low class delivered %d frames while saturated", nLo.RxDelivered)
	}
	if nHi.RxDelivered != 4 {
		t.Fatalf("high class delivered %d/4 while saturated", nHi.RxDelivered)
	}

	// After the state clears, low-class traffic flows again.
	w.Eng.RunUntil(sim.Time(600 * sim.Microsecond))
	if g.State() != StateOK {
		t.Fatalf("want recovery, got %v", g.State())
	}
	a.DeliverWire(w.UDPFrom(fLo, 128))
	w.Eng.RunUntil(sim.Time(700 * sim.Microsecond))
	if nLo.RxDelivered != 1 {
		t.Fatalf("low class must flow after recovery: delivered %d", nLo.RxDelivered)
	}
	if w.NIC.RxShed != 4 {
		t.Fatalf("no shedding after recovery: %d", w.NIC.RxShed)
	}
	g.Stop()
}

// TestTenantSnapshotOrder pins the determinism contract on every per-tenant
// surface: TenantSnapshots, Snapshot and the metric registration walk
// sortedTenantIDs — never the tenant maps directly — so rows come out in
// ascending tenant order regardless of map insertion history, and repeated
// snapshots of unchanged state are identical.
func TestTenantSnapshotOrder(t *testing.T) {
	_, w := newWorld(t)
	g := NewGovernor(w.Eng, w.NIC, w.LLC, Config{
		DDIOShare:     0.5,
		TenantWeights: map[uint32]int{9: 1, 3: 7, 27: 2, 1: 4},
	})
	// Tenants 14 and 5 hold connections without being configured: they must
	// appear in the snapshot union, still in ascending order.
	for _, id := range []uint32{14, 5, 3} {
		if err := g.AdmitConn(id); err != nil {
			t.Fatalf("admit tenant %d: %v", id, err)
		}
	}

	rows := g.TenantSnapshots()
	want := []uint32{1, 3, 5, 9, 14, 27}
	if len(rows) != len(want) {
		t.Fatalf("got %d tenant rows, want %d", len(rows), len(want))
	}
	for i, row := range rows {
		if row.Tenant != want[i] {
			t.Fatalf("row %d is tenant %d, want %d (rows must be ascending)", i, row.Tenant, want[i])
		}
	}
	// Configured tenants carry their weight; ad-hoc tenants default to 1.
	if rows[1].Weight != 7 || rows[1].Conns != 1 {
		t.Fatalf("tenant 3: weight %d conns %d, want 7/1", rows[1].Weight, rows[1].Conns)
	}
	if rows[2].Weight != 1 || rows[2].Conns != 1 {
		t.Fatalf("tenant 5: weight %d conns %d, want 1/1", rows[2].Weight, rows[2].Conns)
	}

	// Repeated snapshots of unchanged state must be byte-identical, and the
	// full Snapshot must embed the same rows.
	for i := 0; i < 8; i++ {
		again := g.TenantSnapshots()
		if !reflect.DeepEqual(rows, again) {
			t.Fatalf("snapshot %d differs:\n%+v\n%+v", i, rows, again)
		}
	}
	if snap := g.Snapshot(); !reflect.DeepEqual(snap.Tenants, rows) {
		t.Fatalf("Snapshot().Tenants differs from TenantSnapshots():\n%+v\n%+v", snap.Tenants, rows)
	}

	// Reconfiguration keeps surviving tenants' charges and stays sorted.
	g.ConfigureTenants(map[uint32]int{27: 1, 3: 2})
	rows = g.TenantSnapshots()
	want = []uint32{3, 5, 14, 27}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows after reconfigure, want %d", len(rows), len(want))
	}
	for i, row := range rows {
		if row.Tenant != want[i] {
			t.Fatalf("row %d is tenant %d, want %d after reconfigure", i, row.Tenant, want[i])
		}
	}
	if rows[0].RingBytes == 0 {
		t.Fatal("tenant 3's ring charge must survive reconfiguration")
	}
}
