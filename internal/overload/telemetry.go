package overload

import "norman/internal/telemetry"

// RegisterMetrics exposes the governor's admission budgets, watchdog state
// and degradation counters on a registry under the "overload" layer. All
// reads are lazy closures over plain fields — registration costs the hot
// path nothing.
func (g *Governor) RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels) {
	r.Gauge(telemetry.Desc{Layer: "overload", Name: "state", Help: "watchdog health state (0=ok 1=pressured 2=saturated)", Unit: "state"},
		labels, func() float64 { return float64(g.state) })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "transitions", Help: "watchdog state transitions", Unit: "transitions"},
		labels, func() uint64 { return g.transitions })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "admitted", Help: "connections admitted by the governor", Unit: "conns"},
		labels, func() uint64 { return g.admitted })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "rejected_ddio", Help: "admissions rejected because the ring footprint would exceed the DDIO share", Unit: "conns"},
		labels, func() uint64 { return g.rejectedDDIO })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "rejected_tenant", Help: "admissions rejected at the per-tenant connection cap", Unit: "conns"},
		labels, func() uint64 { return g.rejectedTenant })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "rejected_pressure", Help: "admissions rejected while the watchdog was saturated", Unit: "conns"},
		labels, func() uint64 { return g.rejectedLoad })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "shed_packets", Help: "ingress frames shed by the priority-aware policy while saturated", Unit: "frames"},
		labels, func() uint64 { return g.shedPkts })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "backpressure_signals", Help: "pressure edges delivered to subscribers (engage + release)", Unit: "signals"},
		labels, func() uint64 { return g.signals })
	r.Gauge(telemetry.Desc{Layer: "overload", Name: "ring_bytes", Help: "RX descriptor bytes charged against the DDIO share by admitted connections", Unit: "bytes"},
		labels, func() float64 { return float64(g.ringBytes) })
	r.Gauge(telemetry.Desc{Layer: "overload", Name: "ring_budget_bytes", Help: "descriptor-byte budget derived from the DDIO share (0 = unlimited)", Unit: "bytes"},
		labels, func() float64 { return float64(g.ringBudget) })
	r.Gauge(telemetry.Desc{Layer: "overload", Name: "occupancy_frac", Help: "aggregate RX ring occupancy fraction at render time", Unit: "fraction"},
		labels, func() float64 { occ, _, _ := g.occupancy(); return occ })
}
