package overload

import (
	"fmt"

	"norman/internal/telemetry"
)

// RegisterMetrics exposes the governor's admission budgets, watchdog state
// and degradation counters on a registry under the "overload" layer. All
// reads are lazy closures over plain fields — registration costs the hot
// path nothing.
func (g *Governor) RegisterMetrics(r *telemetry.Registry, labels telemetry.Labels) {
	r.Gauge(telemetry.Desc{Layer: "overload", Name: "state", Help: "watchdog health state (0=ok 1=pressured 2=saturated)", Unit: "state"},
		labels, func() float64 { return float64(g.state) })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "transitions", Help: "watchdog state transitions", Unit: "transitions"},
		labels, func() uint64 { return g.transitions })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "admitted", Help: "connections admitted by the governor", Unit: "conns"},
		labels, func() uint64 { return g.admitted })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "rejected_ddio", Help: "admissions rejected because the ring footprint would exceed the DDIO share", Unit: "conns"},
		labels, func() uint64 { return g.rejectedDDIO })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "rejected_tenant", Help: "admissions rejected at the per-tenant connection cap", Unit: "conns"},
		labels, func() uint64 { return g.rejectedTenant })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "rejected_pressure", Help: "admissions rejected while the watchdog was saturated", Unit: "conns"},
		labels, func() uint64 { return g.rejectedLoad })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "shed_packets", Help: "ingress frames shed by the priority-aware policy while saturated", Unit: "frames"},
		labels, func() uint64 { return g.shedPkts })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "backpressure_signals", Help: "pressure edges delivered to subscribers (engage + release)", Unit: "signals"},
		labels, func() uint64 { return g.signals })
	r.Gauge(telemetry.Desc{Layer: "overload", Name: "ring_bytes", Help: "RX descriptor bytes charged against the DDIO share by admitted connections", Unit: "bytes"},
		labels, func() float64 { return float64(g.ringBytes) })
	r.Gauge(telemetry.Desc{Layer: "overload", Name: "ring_budget_bytes", Help: "descriptor-byte budget derived from the DDIO share (0 = unlimited)", Unit: "bytes"},
		labels, func() float64 { return float64(g.ringBudget) })
	r.Gauge(telemetry.Desc{Layer: "overload", Name: "occupancy_frac", Help: "aggregate RX ring occupancy fraction at render time", Unit: "fraction"},
		labels, func() float64 { occ, _, _ := g.occupancy(); return occ })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "rejected_throttle", Help: "admissions rejected while the tenant's private health machine was saturated", Unit: "conns"},
		labels, func() uint64 { return g.rejectedThrottle })
	r.Counter(telemetry.Desc{Layer: "overload", Name: "rejected_program", Help: "overlay programs refused by the per-tenant cycle-bound gate", Unit: "programs"},
		labels, func() uint64 { return g.rejectedProgram })

	// Per-tenant isolation accounting, one labeled series per configured
	// tenant, registered in sorted tenant order.
	for _, id := range g.tenantOrder {
		id := id
		tl := make(telemetry.Labels, len(labels)+1)
		for k, v := range labels {
			tl[k] = v
		}
		tl["tenant"] = fmt.Sprint(id)
		r.Gauge(telemetry.Desc{Layer: "tenant", Name: "conns", Help: "connections the tenant currently holds admitted", Unit: "conns"},
			tl, func() float64 { return float64(g.tenantConns[id]) })
		r.Gauge(telemetry.Desc{Layer: "tenant", Name: "ring_bytes", Help: "descriptor bytes charged against the tenant's budget share", Unit: "bytes"},
			tl, func() float64 { return float64(g.tenants[id].ringBytes) })
		r.Gauge(telemetry.Desc{Layer: "tenant", Name: "ring_budget_bytes", Help: "the tenant's weight share of the descriptor budget (0 = unlimited)", Unit: "bytes"},
			tl, func() float64 { return float64(g.tenants[id].ringBudget) })
		r.Gauge(telemetry.Desc{Layer: "tenant", Name: "state", Help: "tenant health state (0=ok 1=pressured 2=saturated)", Unit: "state"},
			tl, func() float64 { return float64(g.tenants[id].state) })
		r.Counter(telemetry.Desc{Layer: "tenant", Name: "throttle_transitions", Help: "tenant health-machine transitions", Unit: "transitions"},
			tl, func() uint64 { return g.tenants[id].transitions })
		r.Counter(telemetry.Desc{Layer: "tenant", Name: "fifo_drops", Help: "ingress frames dropped at the tenant's FIFO share", Unit: "frames"},
			tl, func() uint64 { return g.nic.TenantFifoDrops(id) })
	}
}
