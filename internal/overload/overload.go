// Package overload is the resource governor at the NIC/control-plane
// boundary: it converts resource exhaustion — DDIO ways past the E3 cliff,
// ingress FIFO saturation, per-tenant connection floods — into typed,
// observable, prioritized degradation instead of silent collapse.
//
// The paper's position (§4.3) is that the kernel must stay on the resource
// path even when the dataplane bypasses it: admission, backpressure and
// shedding are exactly the decisions that need a privileged, whole-host view.
// Four mechanisms compose here:
//
//   - Admission control: connection setup consults a budget tracker (ring
//     memory against the DDIO share, per-tenant connection counts, watchdog
//     saturation) and rejects with a typed AdmissionError naming the
//     exhausted resource — the caller knows *why*, not just "no".
//   - Watermark backpressure: when ring occupancy crosses the high
//     watermark, subscribed transport senders halve their effective window
//     until the low watermark clears (hysteresis, no oscillation).
//   - Priority-aware shedding: under sustained saturation the NIC sheds
//     ingress for low-QoS classes first, reusing the qos class weights, so
//     high-priority goodput survives the cliff.
//   - Watchdog: a virtual-time sampler drives a three-state health machine
//     (ok/pressured/saturated) with streak-based hysteresis, exported via
//     metrics, trace spans, and the overload.status ctl op.
package overload

import (
	"errors"
	"fmt"
	"sort"

	"norman/internal/cache"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/telemetry"
)

// ErrAdmission is the sentinel every admission rejection wraps: callers can
// errors.Is against it without caring which resource ran out.
var ErrAdmission = errors.New("overload: admission rejected")

// Resource names the budget an admission decision exhausted.
type Resource string

// The admission-controlled resources.
const (
	// ResourceRingDDIO: the aggregate RX descriptor footprint of admitted
	// connections would exceed the governor's share of the DDIO ways — the
	// next connection would push the whole host past the E3 cliff.
	ResourceRingDDIO Resource = "ring_ddio"
	// ResourceTenantConns: the tenant is at its connection cap.
	ResourceTenantConns Resource = "tenant_conns"
	// ResourceIngressFIFO: the watchdog is in the saturated state — the NIC
	// is already dropping, so new connections are refused until it clears.
	ResourceIngressFIFO Resource = "ingress_fifo"
	// ResourceTenantDDIO: the tenant's own slice of the descriptor budget
	// (its weight share of the DDIO capacity) is full — the neighborly
	// version of ResourceRingDDIO.
	ResourceTenantDDIO Resource = "tenant_ddio"
	// ResourceTenantThrottle: the tenant's private health machine is
	// saturated — *its* rings are overflowing or *its* FIFO share is
	// dropping — so its connection setups are refused until it calms, while
	// other tenants keep dialing.
	ResourceTenantThrottle Resource = "tenant_throttle"
	// ResourceProgramCycles: the overlay program's verified worst-case
	// per-packet cycle bound exceeds what the tenant may impose on the
	// shared pipeline.
	ResourceProgramCycles Resource = "program_cycles"
)

// AdmissionError is the typed rejection: which resource, which tenant, and
// the used/budget pair that failed. It wraps ErrAdmission.
type AdmissionError struct {
	Resource Resource
	Tenant   uint32
	Used     int
	Budget   int
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("%v: %s exhausted for tenant %d (%d/%d)",
		ErrAdmission, e.Resource, e.Tenant, e.Used, e.Budget)
}

// Unwrap lets errors.Is(err, ErrAdmission) match.
func (e *AdmissionError) Unwrap() error { return ErrAdmission }

// State is the watchdog's three-level health machine.
type State int

// The health states, in escalation order.
const (
	StateOK        State = iota // resources below watermarks
	StatePressured              // occupancy past the high watermark
	StateSaturated              // the NIC is actively dropping
)

func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StatePressured:
		return "pressured"
	case StateSaturated:
		return "saturated"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Config parameterizes a Governor. Zero values pick the defaults noted.
type Config struct {
	// DDIOShare is the fraction of the LLC's DDIO capacity that admitted
	// connections' RX descriptor footprints may claim. 0 = 0.85 (leave
	// headroom for payload lines and the host's own DMA traffic).
	DDIOShare float64
	// MaxConnsPerTenant caps simultaneously open connections per UID.
	// 0 = unlimited.
	MaxConnsPerTenant int
	// HighWatermark is the ring/FIFO occupancy fraction that raises
	// pressure; 0 = 0.75. LowWatermark is the fraction that must clear
	// before pressure releases; 0 = 0.25.
	HighWatermark float64
	LowWatermark  float64
	// SampleEvery is the watchdog sampling period in virtual time; 0 = 10µs.
	SampleEvery sim.Duration
	// EscalateAfter is how many consecutive hot samples escalate the state
	// one level (0 = 2); ClearAfter is how many consecutive calm samples
	// de-escalate it (0 = 3). The asymmetry is the hysteresis: pressure
	// engages faster than it releases, so the signal cannot oscillate at
	// the sampling frequency.
	EscalateAfter int
	ClearAfter    int
	// TenantWeights, when non-nil, turns on per-tenant isolation accounting:
	// the ring/DDIO budget is split across the listed tenants in proportion
	// to their weights (mirroring the NIC scheduler's weights), and each
	// tenant gets a private health machine with the same hysteresis as the
	// global watchdog — a tenant that saturates its own share is throttled
	// with typed errors while its neighbors keep dialing.
	TenantWeights map[uint32]int
	// MaxProgramCycles caps the verified worst-case per-packet cycle bound
	// of overlay programs tenants may install (AdmitProgram). 0 = unlimited.
	MaxProgramCycles int
}

func (c Config) ddioShare() float64 {
	if c.DDIOShare <= 0 {
		return 0.85
	}
	return c.DDIOShare
}

func (c Config) highWater() float64 {
	if c.HighWatermark <= 0 {
		return 0.75
	}
	return c.HighWatermark
}

func (c Config) lowWater() float64 {
	if c.LowWatermark <= 0 {
		return 0.25
	}
	return c.LowWatermark
}

func (c Config) sampleEvery() sim.Duration {
	if c.SampleEvery <= 0 {
		return 10 * sim.Microsecond
	}
	return c.SampleEvery
}

func (c Config) escalateAfter() int {
	if c.EscalateAfter <= 0 {
		return 2
	}
	return c.EscalateAfter
}

func (c Config) clearAfter() int {
	if c.ClearAfter <= 0 {
		return 3
	}
	return c.ClearAfter
}

// Governor is the overload controller for one host: admission budgets, the
// watchdog state machine, backpressure fan-out and the NIC shed policy all
// hang off it. It runs entirely in virtual time and keeps plain counters, so
// it is deterministic and free when idle.
type Governor struct {
	eng *sim.Engine
	nic *nic.NIC
	cfg Config

	// Admission budgets.
	tenantConns map[uint32]int
	ringBytes   int // RX descriptor footprint admitted so far
	ringBudget  int // ddioShare × LLC DDIOBytes; 0 = unlimited (no cache model)

	// Watchdog.
	state      State
	hotStreak  int
	calmStreak int
	lastDrops  uint64 // NIC drop counters at the previous sample
	until      sim.Time
	watchGen   uint64 // bumps cancel in-flight ticks
	running    bool

	subs   []func(pressured bool)
	tracer *telemetry.Tracer

	// Per-tenant isolation accounting (Config.TenantWeights). tenantOrder
	// keeps every iteration — sampling, snapshots, metrics — in ascending
	// tenant order so no map-range order ever leaks into output.
	tenants     map[uint32]*tenantGov
	tenantOrder []uint32

	// Counters (exported via RegisterMetrics).
	admitted         uint64
	rejectedDDIO     uint64
	rejectedTenant   uint64
	rejectedLoad     uint64
	rejectedThrottle uint64
	rejectedProgram  uint64
	transitions      uint64
	signals          uint64
	shedPkts         uint64
}

// tenantGov is one tenant's private budget and health machine.
type tenantGov struct {
	tenant     uint32
	weight     int
	ringBytes  int
	ringBudget int // weight share of the governor budget; 0 = unlimited

	state       State
	hotStreak   int
	calmStreak  int
	lastDrops   uint64
	transitions uint64
}

// NewGovernor builds a governor over the NIC. llc supplies the DDIO budget;
// nil (no cache model) leaves ring admission unlimited.
func NewGovernor(eng *sim.Engine, n *nic.NIC, llc *cache.LLC, cfg Config) *Governor {
	g := &Governor{
		eng:         eng,
		nic:         n,
		cfg:         cfg,
		tenantConns: make(map[uint32]int),
	}
	if llc != nil {
		g.ringBudget = int(cfg.ddioShare() * float64(llc.DDIOBytes()))
	}
	if len(cfg.TenantWeights) > 0 {
		g.ConfigureTenants(cfg.TenantWeights)
	}
	return g
}

// ConfigureTenants (re)installs per-tenant isolation accounting: the ring
// budget is split weight-proportionally across the listed tenants and each
// gets a fresh health machine. Existing per-tenant charges are preserved for
// tenants that survive the reconfiguration.
func (g *Governor) ConfigureTenants(weights map[uint32]int) {
	ids := make([]uint32, 0, len(weights))
	total := 0
	for id, w := range weights {
		if w < 1 {
			w = 1
		}
		total += w
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	prev := g.tenants
	g.tenants = make(map[uint32]*tenantGov, len(ids))
	g.tenantOrder = ids
	for _, id := range ids {
		w := weights[id]
		if w < 1 {
			w = 1
		}
		tg := &tenantGov{tenant: id, weight: w}
		if old, ok := prev[id]; ok {
			tg.ringBytes = old.ringBytes
		}
		if g.ringBudget > 0 && total > 0 {
			tg.ringBudget = g.ringBudget * w / total
		}
		g.tenants[id] = tg
	}
}

// SetTracer attaches a tracer; state transitions then emit "pressure" spans.
func (g *Governor) SetTracer(t *telemetry.Tracer) { g.tracer = t }

// State returns the watchdog's current health state.
func (g *Governor) State() State { return g.state }

// Running reports whether the watchdog sampler is active.
func (g *Governor) Running() bool { return g.running }

// connCost is the RX descriptor footprint one connection pins in the DDIO
// ways: ringSize descriptor cache lines. This is the quantity whose aggregate
// crossing the DDIO capacity produces the E3 cliff.
func (g *Governor) connCost() int {
	return g.nic.RingSize() * 64
}

// RingBudget reports the admitted descriptor bytes and the budget
// (0 budget = unlimited).
func (g *Governor) RingBudget() (used, budget int) { return g.ringBytes, g.ringBudget }

// AdmitConn runs admission control for one connection owned by tenant. On
// success the budgets are charged and nil is returned; the caller must pair
// it with ReleaseConn when the connection closes (or fails to open). On
// rejection the returned error wraps ErrAdmission and names the exhausted
// resource; no budget is charged.
func (g *Governor) AdmitConn(tenant uint32) error {
	if cap := g.cfg.MaxConnsPerTenant; cap > 0 {
		if used := g.tenantConns[tenant]; used >= cap {
			g.rejectedTenant++
			return &AdmissionError{Resource: ResourceTenantConns, Tenant: tenant, Used: used, Budget: cap}
		}
	}
	if g.state == StateSaturated {
		g.rejectedLoad++
		used, capacity, _ := g.nic.RxOccupancy()
		return &AdmissionError{Resource: ResourceIngressFIFO, Tenant: tenant, Used: used, Budget: capacity}
	}
	cost := g.connCost()
	tg := g.tenants[tenant]
	if tg != nil {
		if tg.state == StateSaturated {
			g.rejectedThrottle++
			used, capacity, _ := g.nic.TenantRxOccupancy(tenant)
			return &AdmissionError{Resource: ResourceTenantThrottle, Tenant: tenant, Used: used, Budget: capacity}
		}
		if tg.ringBudget > 0 && tg.ringBytes+cost > tg.ringBudget {
			g.rejectedDDIO++
			return &AdmissionError{Resource: ResourceTenantDDIO, Tenant: tenant, Used: tg.ringBytes + cost, Budget: tg.ringBudget}
		}
	}
	if g.ringBudget > 0 && g.ringBytes+cost > g.ringBudget {
		g.rejectedDDIO++
		return &AdmissionError{Resource: ResourceRingDDIO, Tenant: tenant, Used: g.ringBytes + cost, Budget: g.ringBudget}
	}
	g.tenantConns[tenant]++
	g.ringBytes += cost
	if tg != nil {
		tg.ringBytes += cost
	}
	g.admitted++
	return nil
}

// AdmitProgram gates overlay-program installation the way AdmitConn gates
// connection setup: the kernel refuses a tenant's program when its verified
// worst-case per-packet cycle bound exceeds MaxProgramCycles. This is the
// interposition the paper argues for — in a bypass world nothing stands
// between a tenant and the shared pipeline, so an overlay-heavy neighbor
// taxes every packet on the NIC.
func (g *Governor) AdmitProgram(tenant uint32, cycleBound int) error {
	if max := g.cfg.MaxProgramCycles; max > 0 && cycleBound > max {
		g.rejectedProgram++
		return &AdmissionError{Resource: ResourceProgramCycles, Tenant: tenant, Used: cycleBound, Budget: max}
	}
	return nil
}

// ReleaseConn returns one connection's budget charges.
func (g *Governor) ReleaseConn(tenant uint32) {
	if g.tenantConns[tenant] > 0 {
		g.tenantConns[tenant]--
		if g.tenantConns[tenant] == 0 {
			delete(g.tenantConns, tenant)
		}
	}
	if g.ringBytes >= g.connCost() {
		g.ringBytes -= g.connCost()
	}
	if tg := g.tenants[tenant]; tg != nil && tg.ringBytes >= g.connCost() {
		tg.ringBytes -= g.connCost()
	}
}

// Subscribe registers a backpressure listener. fn(true) fires when the
// watchdog leaves the OK state, fn(false) when it returns to OK. Transport
// streams subscribe their Backpressure method here.
func (g *Governor) Subscribe(fn func(pressured bool)) {
	g.subs = append(g.subs, fn)
}

// InstallShedding installs the priority-aware shed policy on the NIC:
// while the watchdog is saturated, ingress frames whose class weight is
// below the heaviest configured weight are dropped before they consume FIFO
// or DMA resources. classOf maps a packet's owning UID to its QoS class;
// weights are the qos scheduler's class weights (reused verbatim, so ingress
// shedding and egress scheduling agree on who matters).
func (g *Governor) InstallShedding(classOf func(uid uint32) uint32, weights map[uint32]float64) {
	protect := 0.0
	for _, w := range weights {
		if w > protect {
			protect = w
		}
	}
	g.nic.SetShedPolicy(func(c *nic.Conn, _ *packet.Packet) bool {
		if g.state != StateSaturated {
			return false
		}
		if weights[classOf(c.Meta.UID)] >= protect {
			return false
		}
		g.shedPkts++
		return true
	})
}

// Start launches the watchdog sampler. until bounds it in virtual time
// (0 = run until Stop) — experiments pass their horizon so the engine can
// drain to quiescence afterwards. Idempotent while running.
func (g *Governor) Start(until sim.Time) {
	if g.running {
		return
	}
	g.running = true
	g.until = until
	g.watchGen++
	gen := g.watchGen
	g.eng.After(g.cfg.sampleEvery(), func() { g.tick(gen) })
}

// Stop halts the watchdog; in-flight ticks become no-ops. The health state
// is retained.
func (g *Governor) Stop() {
	g.running = false
	g.watchGen++
}

func (g *Governor) tick(gen uint64) {
	if gen != g.watchGen {
		return
	}
	now := g.eng.Now()
	if g.until != 0 && now.After(g.until) {
		g.running = false
		return
	}
	g.sample(now)
	g.eng.After(g.cfg.sampleEvery(), func() { g.tick(gen) })
}

// occupancy returns the aggregate RX ring occupancy fraction, the ingress
// FIFO fill fraction, and how many rings sit above their high watermark.
func (g *Governor) occupancy() (occ, fifo float64, overHigh int) {
	used, capacity, over := g.nic.RxOccupancy()
	if capacity > 0 {
		occ = float64(used) / float64(capacity)
	}
	if w := g.nic.RxWindow(); w > 0 {
		fifo = float64(g.nic.RxInflight()) / float64(w)
	}
	return occ, fifo, over
}

// sample takes one watchdog reading and turns it through the hysteresis
// machine: EscalateAfter consecutive hot samples raise the state one level,
// ClearAfter consecutive calm samples (below the *low* watermark, with no
// new drops) lower it one level. Raw readings between the watermarks hold
// the current state — that dead band is what prevents oscillation.
func (g *Governor) sample(now sim.Time) {
	occ, fifo, overHigh := g.occupancy()
	drops := g.nic.RxFifoDrop + g.nic.RxDropRing
	delta := drops - g.lastDrops
	g.lastDrops = drops

	hi, lo := g.cfg.highWater(), g.cfg.lowWater()
	var raw State
	switch {
	case delta > 0:
		raw = StateSaturated
	case occ >= hi || fifo >= hi || overHigh > 0:
		raw = StatePressured
	default:
		raw = StateOK
	}

	switch {
	case raw > g.state:
		g.hotStreak++
		g.calmStreak = 0
		if g.hotStreak >= g.cfg.escalateAfter() {
			g.setState(g.state+1, now)
			g.hotStreak = 0
		}
	case raw < g.state && occ <= lo && fifo <= lo && delta == 0:
		g.calmStreak++
		g.hotStreak = 0
		if g.calmStreak >= g.cfg.clearAfter() {
			g.setState(g.state-1, now)
			g.calmStreak = 0
		}
	default:
		g.hotStreak = 0
		g.calmStreak = 0
	}

	// Per-tenant health machines, in sorted tenant order: each tenant is
	// judged only by its own rings and its own FIFO-share drops, through the
	// same escalate/clear hysteresis as the global watchdog.
	for _, id := range g.tenantOrder {
		g.sampleTenant(g.tenants[id], now, hi, lo)
	}
}

func (g *Governor) sampleTenant(tg *tenantGov, now sim.Time, hi, lo float64) {
	used, capacity, overHigh := g.nic.TenantRxOccupancy(tg.tenant)
	var occ float64
	if capacity > 0 {
		occ = float64(used) / float64(capacity)
	}
	drops := g.nic.TenantFifoDrops(tg.tenant)
	delta := drops - tg.lastDrops
	tg.lastDrops = drops

	budgetFull := tg.ringBudget > 0 && tg.ringBytes+g.connCost() > tg.ringBudget
	var raw State
	switch {
	case delta > 0:
		raw = StateSaturated
	case occ >= hi || overHigh > 0 || budgetFull:
		raw = StatePressured
	default:
		raw = StateOK
	}

	switch {
	case raw > tg.state:
		tg.hotStreak++
		tg.calmStreak = 0
		if tg.hotStreak >= g.cfg.escalateAfter() {
			g.setTenantState(tg, tg.state+1, now)
			tg.hotStreak = 0
		}
	case raw < tg.state && occ <= lo && delta == 0 && !budgetFull:
		tg.calmStreak++
		tg.hotStreak = 0
		if tg.calmStreak >= g.cfg.clearAfter() {
			g.setTenantState(tg, tg.state-1, now)
			tg.calmStreak = 0
		}
	default:
		tg.hotStreak = 0
		tg.calmStreak = 0
	}
}

// setTenantState commits one tenant's health transition, emitting a
// "throttle" span under the "tenant" layer so traces show who was squeezed
// and when.
func (g *Governor) setTenantState(tg *tenantGov, s State, now sim.Time) {
	if s == tg.state {
		return
	}
	prev := tg.state
	tg.state = s
	tg.transitions++
	if g.tracer != nil {
		id := g.tracer.StampID()
		g.tracer.Record(id, now, "tenant", "throttle",
			fmt.Sprintf("tenant=%d %s->%s", tg.tenant, prev, s))
	}
}

// setState commits a transition: count it, emit a trace span, and notify
// subscribers on the pressure edge (leaving OK / returning to OK).
func (g *Governor) setState(s State, now sim.Time) {
	if s == g.state {
		return
	}
	prev := g.state
	g.state = s
	g.transitions++
	if g.tracer != nil {
		id := g.tracer.StampID()
		g.tracer.Record(id, now, "overload", "pressure", prev.String()+"->"+s.String())
	}
	on, wasOn := s != StateOK, prev != StateOK
	if on != wasOn {
		g.signals++
		for _, fn := range g.subs {
			fn(on)
		}
	}
}

// Snapshot is the governor's externally visible state, served over the
// overload.status ctl op and printed by nnetstat -pressure.
type Snapshot struct {
	State            string  `json:"state"`
	Transitions      uint64  `json:"transitions"`
	Admitted         uint64  `json:"admitted"`
	RejectedDDIO     uint64  `json:"rejected_ddio"`
	RejectedTenant   uint64  `json:"rejected_tenant"`
	RejectedLoad     uint64  `json:"rejected_pressure"`
	RejectedThrottle uint64  `json:"rejected_throttle"`
	RejectedProgram  uint64  `json:"rejected_program"`
	RingBytes        int     `json:"ring_bytes"`
	RingBudget       int     `json:"ring_budget_bytes"`
	Occupancy        float64 `json:"occupancy_frac"`
	FifoFrac         float64 `json:"fifo_frac"`
	ShedPackets      uint64  `json:"shed_packets"`
	Signals          uint64  `json:"backpressure_signals"`
	Watching         bool    `json:"watching"`

	// Tenants lists per-tenant accounting in ascending tenant id order —
	// always sorted, so snapshots, metrics dumps and ctl output are
	// deterministic run to run.
	Tenants []TenantSnapshot `json:"tenants,omitempty"`
}

// TenantSnapshot is one tenant's row of the governor snapshot.
type TenantSnapshot struct {
	Tenant      uint32 `json:"tenant"`
	Weight      int    `json:"weight"`
	Conns       int    `json:"conns"`
	RingBytes   int    `json:"ring_bytes"`
	RingBudget  int    `json:"ring_budget_bytes"`
	State       string `json:"state"`
	Transitions uint64 `json:"transitions"`
	FifoDrops   uint64 `json:"fifo_drops"`
}

// sortedTenantIDs returns the union of configured tenants and tenants that
// merely hold connections, ascending. Snapshot and metrics iterate this —
// never the maps directly — so map-range order cannot leak into output.
func (g *Governor) sortedTenantIDs() []uint32 {
	seen := make(map[uint32]bool, len(g.tenantOrder)+len(g.tenantConns))
	ids := make([]uint32, 0, len(g.tenantOrder)+len(g.tenantConns))
	for _, id := range g.tenantOrder {
		seen[id] = true
		ids = append(ids, id)
	}
	for id := range g.tenantConns {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TenantSnapshots returns per-tenant accounting rows in ascending tenant
// order.
func (g *Governor) TenantSnapshots() []TenantSnapshot {
	ids := g.sortedTenantIDs()
	if len(ids) == 0 {
		return nil
	}
	out := make([]TenantSnapshot, 0, len(ids))
	for _, id := range ids {
		row := TenantSnapshot{
			Tenant:    id,
			Weight:    1,
			Conns:     g.tenantConns[id],
			State:     StateOK.String(),
			FifoDrops: g.nic.TenantFifoDrops(id),
		}
		if tg, ok := g.tenants[id]; ok {
			row.Weight = tg.weight
			row.RingBytes = tg.ringBytes
			row.RingBudget = tg.ringBudget
			row.State = tg.state.String()
			row.Transitions = tg.transitions
		}
		out = append(out, row)
	}
	return out
}

// TenantState returns one tenant's health state (StateOK when the tenant has
// no private machine).
func (g *Governor) TenantState(tenant uint32) State {
	if tg, ok := g.tenants[tenant]; ok {
		return tg.state
	}
	return StateOK
}

// Snapshot captures the current state for the control plane.
func (g *Governor) Snapshot() Snapshot {
	occ, fifo, _ := g.occupancy()
	return Snapshot{
		State:            g.state.String(),
		Transitions:      g.transitions,
		Admitted:         g.admitted,
		RejectedDDIO:     g.rejectedDDIO,
		RejectedTenant:   g.rejectedTenant,
		RejectedLoad:     g.rejectedLoad,
		RejectedThrottle: g.rejectedThrottle,
		RejectedProgram:  g.rejectedProgram,
		RingBytes:        g.ringBytes,
		RingBudget:       g.ringBudget,
		Occupancy:        occ,
		FifoFrac:         fifo,
		ShedPackets:      g.shedPkts,
		Signals:          g.signals,
		Watching:         g.running,
		Tenants:          g.TenantSnapshots(),
	}
}

// Rejected returns the total typed admission rejections across resources.
func (g *Governor) Rejected() uint64 {
	return g.rejectedDDIO + g.rejectedTenant + g.rejectedLoad + g.rejectedThrottle + g.rejectedProgram
}

// RejectedThrottled returns admissions refused by per-tenant throttles.
func (g *Governor) RejectedThrottled() uint64 { return g.rejectedThrottle }

// RejectedPrograms returns overlay programs refused by the cycle-bound gate.
func (g *Governor) RejectedPrograms() uint64 { return g.rejectedProgram }

// ShedPackets returns frames dropped by the installed shed policy.
func (g *Governor) ShedPackets() uint64 { return g.shedPkts }
