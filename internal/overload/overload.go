// Package overload is the resource governor at the NIC/control-plane
// boundary: it converts resource exhaustion — DDIO ways past the E3 cliff,
// ingress FIFO saturation, per-tenant connection floods — into typed,
// observable, prioritized degradation instead of silent collapse.
//
// The paper's position (§4.3) is that the kernel must stay on the resource
// path even when the dataplane bypasses it: admission, backpressure and
// shedding are exactly the decisions that need a privileged, whole-host view.
// Four mechanisms compose here:
//
//   - Admission control: connection setup consults a budget tracker (ring
//     memory against the DDIO share, per-tenant connection counts, watchdog
//     saturation) and rejects with a typed AdmissionError naming the
//     exhausted resource — the caller knows *why*, not just "no".
//   - Watermark backpressure: when ring occupancy crosses the high
//     watermark, subscribed transport senders halve their effective window
//     until the low watermark clears (hysteresis, no oscillation).
//   - Priority-aware shedding: under sustained saturation the NIC sheds
//     ingress for low-QoS classes first, reusing the qos class weights, so
//     high-priority goodput survives the cliff.
//   - Watchdog: a virtual-time sampler drives a three-state health machine
//     (ok/pressured/saturated) with streak-based hysteresis, exported via
//     metrics, trace spans, and the overload.status ctl op.
package overload

import (
	"errors"
	"fmt"

	"norman/internal/cache"
	"norman/internal/nic"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/telemetry"
)

// ErrAdmission is the sentinel every admission rejection wraps: callers can
// errors.Is against it without caring which resource ran out.
var ErrAdmission = errors.New("overload: admission rejected")

// Resource names the budget an admission decision exhausted.
type Resource string

// The admission-controlled resources.
const (
	// ResourceRingDDIO: the aggregate RX descriptor footprint of admitted
	// connections would exceed the governor's share of the DDIO ways — the
	// next connection would push the whole host past the E3 cliff.
	ResourceRingDDIO Resource = "ring_ddio"
	// ResourceTenantConns: the tenant is at its connection cap.
	ResourceTenantConns Resource = "tenant_conns"
	// ResourceIngressFIFO: the watchdog is in the saturated state — the NIC
	// is already dropping, so new connections are refused until it clears.
	ResourceIngressFIFO Resource = "ingress_fifo"
)

// AdmissionError is the typed rejection: which resource, which tenant, and
// the used/budget pair that failed. It wraps ErrAdmission.
type AdmissionError struct {
	Resource Resource
	Tenant   uint32
	Used     int
	Budget   int
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("%v: %s exhausted for tenant %d (%d/%d)",
		ErrAdmission, e.Resource, e.Tenant, e.Used, e.Budget)
}

// Unwrap lets errors.Is(err, ErrAdmission) match.
func (e *AdmissionError) Unwrap() error { return ErrAdmission }

// State is the watchdog's three-level health machine.
type State int

// The health states, in escalation order.
const (
	StateOK        State = iota // resources below watermarks
	StatePressured              // occupancy past the high watermark
	StateSaturated              // the NIC is actively dropping
)

func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StatePressured:
		return "pressured"
	case StateSaturated:
		return "saturated"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Config parameterizes a Governor. Zero values pick the defaults noted.
type Config struct {
	// DDIOShare is the fraction of the LLC's DDIO capacity that admitted
	// connections' RX descriptor footprints may claim. 0 = 0.85 (leave
	// headroom for payload lines and the host's own DMA traffic).
	DDIOShare float64
	// MaxConnsPerTenant caps simultaneously open connections per UID.
	// 0 = unlimited.
	MaxConnsPerTenant int
	// HighWatermark is the ring/FIFO occupancy fraction that raises
	// pressure; 0 = 0.75. LowWatermark is the fraction that must clear
	// before pressure releases; 0 = 0.25.
	HighWatermark float64
	LowWatermark  float64
	// SampleEvery is the watchdog sampling period in virtual time; 0 = 10µs.
	SampleEvery sim.Duration
	// EscalateAfter is how many consecutive hot samples escalate the state
	// one level (0 = 2); ClearAfter is how many consecutive calm samples
	// de-escalate it (0 = 3). The asymmetry is the hysteresis: pressure
	// engages faster than it releases, so the signal cannot oscillate at
	// the sampling frequency.
	EscalateAfter int
	ClearAfter    int
}

func (c Config) ddioShare() float64 {
	if c.DDIOShare <= 0 {
		return 0.85
	}
	return c.DDIOShare
}

func (c Config) highWater() float64 {
	if c.HighWatermark <= 0 {
		return 0.75
	}
	return c.HighWatermark
}

func (c Config) lowWater() float64 {
	if c.LowWatermark <= 0 {
		return 0.25
	}
	return c.LowWatermark
}

func (c Config) sampleEvery() sim.Duration {
	if c.SampleEvery <= 0 {
		return 10 * sim.Microsecond
	}
	return c.SampleEvery
}

func (c Config) escalateAfter() int {
	if c.EscalateAfter <= 0 {
		return 2
	}
	return c.EscalateAfter
}

func (c Config) clearAfter() int {
	if c.ClearAfter <= 0 {
		return 3
	}
	return c.ClearAfter
}

// Governor is the overload controller for one host: admission budgets, the
// watchdog state machine, backpressure fan-out and the NIC shed policy all
// hang off it. It runs entirely in virtual time and keeps plain counters, so
// it is deterministic and free when idle.
type Governor struct {
	eng *sim.Engine
	nic *nic.NIC
	cfg Config

	// Admission budgets.
	tenantConns map[uint32]int
	ringBytes   int // RX descriptor footprint admitted so far
	ringBudget  int // ddioShare × LLC DDIOBytes; 0 = unlimited (no cache model)

	// Watchdog.
	state      State
	hotStreak  int
	calmStreak int
	lastDrops  uint64 // NIC drop counters at the previous sample
	until      sim.Time
	watchGen   uint64 // bumps cancel in-flight ticks
	running    bool

	subs   []func(pressured bool)
	tracer *telemetry.Tracer

	// Counters (exported via RegisterMetrics).
	admitted       uint64
	rejectedDDIO   uint64
	rejectedTenant uint64
	rejectedLoad   uint64
	transitions    uint64
	signals        uint64
	shedPkts       uint64
}

// NewGovernor builds a governor over the NIC. llc supplies the DDIO budget;
// nil (no cache model) leaves ring admission unlimited.
func NewGovernor(eng *sim.Engine, n *nic.NIC, llc *cache.LLC, cfg Config) *Governor {
	g := &Governor{
		eng:         eng,
		nic:         n,
		cfg:         cfg,
		tenantConns: make(map[uint32]int),
	}
	if llc != nil {
		g.ringBudget = int(cfg.ddioShare() * float64(llc.DDIOBytes()))
	}
	return g
}

// SetTracer attaches a tracer; state transitions then emit "pressure" spans.
func (g *Governor) SetTracer(t *telemetry.Tracer) { g.tracer = t }

// State returns the watchdog's current health state.
func (g *Governor) State() State { return g.state }

// Running reports whether the watchdog sampler is active.
func (g *Governor) Running() bool { return g.running }

// connCost is the RX descriptor footprint one connection pins in the DDIO
// ways: ringSize descriptor cache lines. This is the quantity whose aggregate
// crossing the DDIO capacity produces the E3 cliff.
func (g *Governor) connCost() int {
	return g.nic.RingSize() * 64
}

// RingBudget reports the admitted descriptor bytes and the budget
// (0 budget = unlimited).
func (g *Governor) RingBudget() (used, budget int) { return g.ringBytes, g.ringBudget }

// AdmitConn runs admission control for one connection owned by tenant. On
// success the budgets are charged and nil is returned; the caller must pair
// it with ReleaseConn when the connection closes (or fails to open). On
// rejection the returned error wraps ErrAdmission and names the exhausted
// resource; no budget is charged.
func (g *Governor) AdmitConn(tenant uint32) error {
	if cap := g.cfg.MaxConnsPerTenant; cap > 0 {
		if used := g.tenantConns[tenant]; used >= cap {
			g.rejectedTenant++
			return &AdmissionError{Resource: ResourceTenantConns, Tenant: tenant, Used: used, Budget: cap}
		}
	}
	if g.state == StateSaturated {
		g.rejectedLoad++
		used, capacity, _ := g.nic.RxOccupancy()
		return &AdmissionError{Resource: ResourceIngressFIFO, Tenant: tenant, Used: used, Budget: capacity}
	}
	cost := g.connCost()
	if g.ringBudget > 0 && g.ringBytes+cost > g.ringBudget {
		g.rejectedDDIO++
		return &AdmissionError{Resource: ResourceRingDDIO, Tenant: tenant, Used: g.ringBytes + cost, Budget: g.ringBudget}
	}
	g.tenantConns[tenant]++
	g.ringBytes += cost
	g.admitted++
	return nil
}

// ReleaseConn returns one connection's budget charges.
func (g *Governor) ReleaseConn(tenant uint32) {
	if g.tenantConns[tenant] > 0 {
		g.tenantConns[tenant]--
		if g.tenantConns[tenant] == 0 {
			delete(g.tenantConns, tenant)
		}
	}
	if g.ringBytes >= g.connCost() {
		g.ringBytes -= g.connCost()
	}
}

// Subscribe registers a backpressure listener. fn(true) fires when the
// watchdog leaves the OK state, fn(false) when it returns to OK. Transport
// streams subscribe their Backpressure method here.
func (g *Governor) Subscribe(fn func(pressured bool)) {
	g.subs = append(g.subs, fn)
}

// InstallShedding installs the priority-aware shed policy on the NIC:
// while the watchdog is saturated, ingress frames whose class weight is
// below the heaviest configured weight are dropped before they consume FIFO
// or DMA resources. classOf maps a packet's owning UID to its QoS class;
// weights are the qos scheduler's class weights (reused verbatim, so ingress
// shedding and egress scheduling agree on who matters).
func (g *Governor) InstallShedding(classOf func(uid uint32) uint32, weights map[uint32]float64) {
	protect := 0.0
	for _, w := range weights {
		if w > protect {
			protect = w
		}
	}
	g.nic.SetShedPolicy(func(c *nic.Conn, _ *packet.Packet) bool {
		if g.state != StateSaturated {
			return false
		}
		if weights[classOf(c.Meta.UID)] >= protect {
			return false
		}
		g.shedPkts++
		return true
	})
}

// Start launches the watchdog sampler. until bounds it in virtual time
// (0 = run until Stop) — experiments pass their horizon so the engine can
// drain to quiescence afterwards. Idempotent while running.
func (g *Governor) Start(until sim.Time) {
	if g.running {
		return
	}
	g.running = true
	g.until = until
	g.watchGen++
	gen := g.watchGen
	g.eng.After(g.cfg.sampleEvery(), func() { g.tick(gen) })
}

// Stop halts the watchdog; in-flight ticks become no-ops. The health state
// is retained.
func (g *Governor) Stop() {
	g.running = false
	g.watchGen++
}

func (g *Governor) tick(gen uint64) {
	if gen != g.watchGen {
		return
	}
	now := g.eng.Now()
	if g.until != 0 && now.After(g.until) {
		g.running = false
		return
	}
	g.sample(now)
	g.eng.After(g.cfg.sampleEvery(), func() { g.tick(gen) })
}

// occupancy returns the aggregate RX ring occupancy fraction, the ingress
// FIFO fill fraction, and how many rings sit above their high watermark.
func (g *Governor) occupancy() (occ, fifo float64, overHigh int) {
	used, capacity, over := g.nic.RxOccupancy()
	if capacity > 0 {
		occ = float64(used) / float64(capacity)
	}
	if w := g.nic.RxWindow(); w > 0 {
		fifo = float64(g.nic.RxInflight()) / float64(w)
	}
	return occ, fifo, over
}

// sample takes one watchdog reading and turns it through the hysteresis
// machine: EscalateAfter consecutive hot samples raise the state one level,
// ClearAfter consecutive calm samples (below the *low* watermark, with no
// new drops) lower it one level. Raw readings between the watermarks hold
// the current state — that dead band is what prevents oscillation.
func (g *Governor) sample(now sim.Time) {
	occ, fifo, overHigh := g.occupancy()
	drops := g.nic.RxFifoDrop + g.nic.RxDropRing
	delta := drops - g.lastDrops
	g.lastDrops = drops

	hi, lo := g.cfg.highWater(), g.cfg.lowWater()
	var raw State
	switch {
	case delta > 0:
		raw = StateSaturated
	case occ >= hi || fifo >= hi || overHigh > 0:
		raw = StatePressured
	default:
		raw = StateOK
	}

	switch {
	case raw > g.state:
		g.hotStreak++
		g.calmStreak = 0
		if g.hotStreak >= g.cfg.escalateAfter() {
			g.setState(g.state+1, now)
			g.hotStreak = 0
		}
	case raw < g.state && occ <= lo && fifo <= lo && delta == 0:
		g.calmStreak++
		g.hotStreak = 0
		if g.calmStreak >= g.cfg.clearAfter() {
			g.setState(g.state-1, now)
			g.calmStreak = 0
		}
	default:
		g.hotStreak = 0
		g.calmStreak = 0
	}
}

// setState commits a transition: count it, emit a trace span, and notify
// subscribers on the pressure edge (leaving OK / returning to OK).
func (g *Governor) setState(s State, now sim.Time) {
	if s == g.state {
		return
	}
	prev := g.state
	g.state = s
	g.transitions++
	if g.tracer != nil {
		id := g.tracer.StampID()
		g.tracer.Record(id, now, "overload", "pressure", prev.String()+"->"+s.String())
	}
	on, wasOn := s != StateOK, prev != StateOK
	if on != wasOn {
		g.signals++
		for _, fn := range g.subs {
			fn(on)
		}
	}
}

// Snapshot is the governor's externally visible state, served over the
// overload.status ctl op and printed by nnetstat -pressure.
type Snapshot struct {
	State          string  `json:"state"`
	Transitions    uint64  `json:"transitions"`
	Admitted       uint64  `json:"admitted"`
	RejectedDDIO   uint64  `json:"rejected_ddio"`
	RejectedTenant uint64  `json:"rejected_tenant"`
	RejectedLoad   uint64  `json:"rejected_pressure"`
	RingBytes      int     `json:"ring_bytes"`
	RingBudget     int     `json:"ring_budget_bytes"`
	Occupancy      float64 `json:"occupancy_frac"`
	FifoFrac       float64 `json:"fifo_frac"`
	ShedPackets    uint64  `json:"shed_packets"`
	Signals        uint64  `json:"backpressure_signals"`
	Watching       bool    `json:"watching"`
}

// Snapshot captures the current state for the control plane.
func (g *Governor) Snapshot() Snapshot {
	occ, fifo, _ := g.occupancy()
	return Snapshot{
		State:          g.state.String(),
		Transitions:    g.transitions,
		Admitted:       g.admitted,
		RejectedDDIO:   g.rejectedDDIO,
		RejectedTenant: g.rejectedTenant,
		RejectedLoad:   g.rejectedLoad,
		RingBytes:      g.ringBytes,
		RingBudget:     g.ringBudget,
		Occupancy:      occ,
		FifoFrac:       fifo,
		ShedPackets:    g.shedPkts,
		Signals:        g.signals,
		Watching:       g.running,
	}
}

// Rejected returns the total typed admission rejections across resources.
func (g *Governor) Rejected() uint64 {
	return g.rejectedDDIO + g.rejectedTenant + g.rejectedLoad
}

// ShedPackets returns frames dropped by the installed shed policy.
func (g *Governor) ShedPackets() uint64 { return g.shedPkts }
