package sim

// Server models a FIFO resource with a single service channel: a CPU core, a
// PCIe link, a NIC pipeline stage, or the wire itself. Work submitted to a
// busy server queues behind in-flight work; queueing delay is captured by the
// difference between submission time and service start.
//
// Server tracks cumulative busy time so experiments can report utilization
// (e.g. the core a sidecar dataplane burns even at low load).
type Server struct {
	name string
	free Time     // earliest instant new work can start
	busy Duration // cumulative service time
	jobs uint64
}

// NewServer returns an idle server with the given diagnostic name.
func NewServer(name string) *Server {
	return &Server{name: name}
}

// Name returns the diagnostic name given at construction.
func (s *Server) Name() string { return s.name }

// Acquire submits work of the given duration at time now and returns the
// interval [start, done] during which the server performs it. start is
// max(now, previous completion); done-start is always d.
func (s *Server) Acquire(now Time, d Duration) (start, done Time) {
	if d < 0 {
		panic("sim: negative service time")
	}
	start = now
	if s.free > start {
		start = s.free
	}
	done = start.Add(d)
	s.free = done
	s.busy += d
	s.jobs++
	return start, done
}

// Delay returns how long work submitted now would wait before starting.
func (s *Server) Delay(now Time) Duration {
	if s.free <= now {
		return 0
	}
	return s.free.Sub(now)
}

// FreeAt returns the earliest time new work could begin service.
func (s *Server) FreeAt() Time { return s.free }

// BusyTime returns cumulative service time performed.
func (s *Server) BusyTime() Duration { return s.busy }

// Jobs returns the number of Acquire calls.
func (s *Server) Jobs() uint64 { return s.jobs }

// Utilization returns busy time divided by elapsed time up to now.
func (s *Server) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return s.busy.Seconds() / Duration(now).Seconds()
}

// Reset clears accumulated state, leaving the server idle at the epoch.
func (s *Server) Reset() {
	s.free = 0
	s.busy = 0
	s.jobs = 0
}
