package sim

import "testing"

// BenchmarkEngineEventThroughput measures raw event dispatch rate — the
// budget everything else in the simulation spends from.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine()
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			e.After(Nanosecond, fire)
		}
	}
	b.ResetTimer()
	e.At(0, fire)
	e.Run()
}

// BenchmarkEngineHeapChurn stresses out-of-order scheduling.
func BenchmarkEngineHeapChurn(b *testing.B) {
	e := NewEngine()
	g := NewRNG(1, "bench")
	for i := 0; i < b.N; i++ {
		e.At(e.Now().Add(Duration(g.Intn(1000))*Nanosecond), func() {})
		if i%64 == 63 {
			for j := 0; j < 32; j++ {
				e.Step()
			}
		}
	}
	e.Run()
}

// BenchmarkServerAcquire measures the FIFO-resource hot path.
func BenchmarkServerAcquire(b *testing.B) {
	s := NewServer("bench")
	for i := 0; i < b.N; i++ {
		s.Acquire(Time(i), 10*Nanosecond)
	}
}
