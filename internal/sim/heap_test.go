package sim

import (
	"sort"
	"testing"
)

// TestEngineHeapOrderingChurn drives the 4-ary heap through a randomized
// push/pop interleaving and checks that events fire in exactly (time, seq)
// order — the same order a stable sort over the schedule would produce.
func TestEngineHeapOrderingChurn(t *testing.T) {
	g := NewRNG(3, "heap-churn")
	e := NewEngine()

	type key struct {
		at  Time
		idx int // scheduling order among same-time events
	}
	var want []key
	var got []key
	idx := 0
	schedule := func(n int) {
		base := e.Now()
		for i := 0; i < n; i++ {
			at := base.Add(Duration(g.Intn(500)) * Nanosecond)
			k := key{at: at, idx: idx}
			idx++
			want = append(want, k)
			e.At(at, func() { got = append(got, k) })
		}
	}

	schedule(200)
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			e.Step()
		}
		schedule(g.Intn(30))
	}
	e.Run()

	sort.SliceStable(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].idx < want[j].idx
	})
	if len(got) != len(want) {
		t.Fatalf("fired %d events, scheduled %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired out of order: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEngineSteadyStateAllocs checks the zero-alloc fast path: once the heap
// backing array is warm, scheduling and firing events must not allocate.
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < 1000 {
			e.After(Nanosecond, fire)
		}
	}
	// Warm the heap capacity.
	e.At(0, fire)
	e.Run()

	n = 0
	allocs := testing.AllocsPerRun(10, func() {
		n = 0
		e.At(e.Now(), fire)
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("steady-state event dispatch allocates %.1f/run, want 0", allocs)
	}
}

// TestFiredTotal checks that engine-fired counts flush to the global
// aggregate when runs return.
func TestFiredTotal(t *testing.T) {
	before := FiredTotal()
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if d := FiredTotal() - before; d != 10 {
		t.Fatalf("FiredTotal advanced by %d, want 10", d)
	}
	// A second Run with no new events must not double-count.
	e.Run()
	if d := FiredTotal() - before; d != 10 {
		t.Fatalf("FiredTotal advanced by %d after idle Run, want 10", d)
	}
}
