package sim

import "math/rand"

// RNG is a deterministic random stream for one model component. Each
// component owns its own stream (derived from the experiment seed plus a
// component label) so that adding randomness to one component does not
// perturb the draws seen by another — runs stay reproducible under model
// evolution.
type RNG struct {
	r *rand.Rand
}

// NewRNG derives a stream from a base seed and a component label.
func NewRNG(seed int64, label string) *RNG {
	h := uint64(seed)
	for _, c := range label {
		h = h*1099511628211 + uint64(c) // FNV-style mix
	}
	return &RNG{r: rand.New(rand.NewSource(int64(h)))}
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit draw.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a uniform 64-bit draw.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Exp returns an exponentially distributed duration with the given mean,
// suitable for Poisson inter-arrival processes.
func (g *RNG) Exp(mean Duration) Duration {
	d := Duration(g.r.ExpFloat64() * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
