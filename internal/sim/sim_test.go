package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end = %v, want 30", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events must fire in scheduling order: %v", got)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(100, func() { fired++ })
	e.RunUntil(50)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 || e.Now() != 100 {
		t.Fatalf("after Run: fired=%d now=%v", fired, e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("Stop should halt the loop: fired=%d", fired)
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("Run should resume: fired=%d", fired)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(Nanosecond, recurse)
		}
	}
	e.At(0, recurse)
	end := e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
	if end != Time(99*Nanosecond) {
		t.Fatalf("end = %v", end)
	}
}

func TestServerFIFOAndUtilization(t *testing.T) {
	s := NewServer("test")
	start, done := s.Acquire(0, 100)
	if start != 0 || done != 100 {
		t.Fatalf("first job [%v,%v]", start, done)
	}
	// Submitted while busy: queues.
	start, done = s.Acquire(50, 100)
	if start != 100 || done != 200 {
		t.Fatalf("second job [%v,%v], want [100,200]", start, done)
	}
	// Submitted after idle gap.
	start, done = s.Acquire(300, 100)
	if start != 300 || done != 400 {
		t.Fatalf("third job [%v,%v], want [300,400]", start, done)
	}
	if s.BusyTime() != 300 {
		t.Fatalf("busy = %v, want 300", s.BusyTime())
	}
	if got := s.Utilization(400); got < 0.74 || got > 0.76 {
		t.Fatalf("utilization = %v, want 0.75", got)
	}
	if s.Jobs() != 3 {
		t.Fatalf("jobs = %d", s.Jobs())
	}
}

// Property: a server never starts a job before its submission or before the
// previous job completes, and busy time equals the sum of service times.
func TestServerInvariants(t *testing.T) {
	f := func(durations []uint16, gaps []uint16) bool {
		s := NewServer("q")
		now := Time(0)
		var prevDone Time
		var total Duration
		for i, d16 := range durations {
			if i < len(gaps) {
				now = now.Add(Duration(gaps[i]))
			}
			d := Duration(d16)
			start, done := s.Acquire(now, d)
			if start < now || start < prevDone {
				return false
			}
			if done != start.Add(d) {
				return false
			}
			prevDone = done
			total += d
		}
		return s.BusyTime() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2.00ns"},
		{3 * Microsecond, "3.00us"},
		{4 * Millisecond, "4.000ms"},
		{5 * Second, "5.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d ps -> %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestPerByteAndGbps(t *testing.T) {
	// 1538 bytes at 100 Gbps ≈ 123 ns.
	d := PerByte(1538, Gbps(100))
	if d < 122*Nanosecond || d > 124*Nanosecond {
		t.Fatalf("PerByte = %v", d)
	}
	if PerByte(100, 0) != 0 {
		t.Fatal("zero bandwidth should be free")
	}
	if PerByte(0, 1e9) != 0 {
		t.Fatal("zero bytes should be free")
	}
}

func TestScale(t *testing.T) {
	if got := Duration(1000).Scale(0.5); got != 500 {
		t.Fatalf("Scale(0.5) = %v", got)
	}
	if got := Duration(3).Scale(0.5); got != 2 { // rounds to nearest
		t.Fatalf("Scale rounding = %v", got)
	}
}

func TestRNGDeterminismAndIndependence(t *testing.T) {
	a1 := NewRNG(1, "alpha")
	a2 := NewRNG(1, "alpha")
	b := NewRNG(1, "beta")
	same, diff := true, false
	for i := 0; i < 32; i++ {
		x, y, z := a1.Uint64(), a2.Uint64(), b.Uint64()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Error("same seed+label must replay identically")
	}
	if !diff {
		t.Error("different labels must give different streams")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(7, "exp")
	const mean = Duration(1000 * Nanosecond)
	var sum Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Exp(mean)
	}
	got := float64(sum) / n / float64(mean)
	if got < 0.95 || got > 1.05 {
		t.Fatalf("exp mean ratio = %v", got)
	}
}
