// Package sim provides a deterministic discrete-event simulation engine.
//
// All Norman experiments run in virtual time: components schedule events on
// an Engine, and durations are expressed in picoseconds so that sub-nanosecond
// costs (per-byte copy time, overlay cycles) accumulate without rounding.
// Virtual time makes throughput and latency results independent of the Go
// runtime (scheduler, GC), which matters because the paper's claims concern
// nanosecond-scale dataplane costs.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in picoseconds since simulation start.
//
// The zero Time is the simulation epoch. At picosecond resolution an int64
// covers about 106 days of virtual time, far beyond any experiment here.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts a virtual duration to a time.Duration (nanosecond resolution).
func (d Duration) Std() time.Duration { return time.Duration(int64(d) / 1000) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Nanoseconds returns the duration as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.2fns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

func (t Time) String() string { return Duration(t).String() }

// Scale returns d scaled by the dimensionless factor f, rounding to the
// nearest picosecond. Scaling a negative duration is not supported.
func (d Duration) Scale(f float64) Duration {
	if d < 0 {
		panic("sim: Scale of negative duration")
	}
	return Duration(float64(d)*f + 0.5)
}

// PerByte returns the time to move n bytes at the given bytes-per-second
// bandwidth. A non-positive bandwidth means "instantaneous" (zero duration);
// this lets cost models disable a term without special cases at call sites.
func PerByte(n int, bytesPerSecond float64) Duration {
	if bytesPerSecond <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n) / bytesPerSecond * float64(Second))
}

// Gbps converts a link rate in gigabits per second to bytes per second.
func Gbps(rate float64) float64 { return rate * 1e9 / 8 }
