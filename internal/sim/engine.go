package sim

import (
	"fmt"
	"sync/atomic"
)

// An event is a callback scheduled at a point in virtual time. Events at the
// same instant fire in scheduling order (seq breaks ties), which keeps runs
// deterministic regardless of heap internals.
//
// Events are stored by value in the engine's heap slice: scheduling never
// boxes through an interface and never allocates a per-event node. The
// slice's spare capacity doubles as the freelist for deferred closures —
// popped slots have their fn cleared (so the closure and everything it
// captures is released immediately) and are reused by subsequent pushes
// without touching the allocator.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// less orders events by time, then by scheduling sequence.
func (a *event) less(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The heap is 4-ary rather than binary: a shallower tree means fewer
// comparison levels per sift, and the four children of a node share two
// cache lines, so the extra per-level comparisons are nearly free. For the
// event-queue access pattern (push future, pop min) this is measurably
// faster than container/heap and needs no interface dispatch.
const heapArity = 4

// Engine is a single-threaded discrete-event simulator.
//
// Engines are not safe for concurrent use; all model code runs inside event
// callbacks on the goroutine that calls Run or Step. Distinct engines are
// fully independent: running many worlds on parallel goroutines (one engine
// per goroutine) is safe and is how the experiment harness fans sweeps out
// across cores.
type Engine struct {
	now     Time
	seq     uint64
	events  []event // 4-ary min-heap, root at index 0
	stopped bool
	nFired  uint64
	flushed uint64 // portion of nFired already added to firedTotal
}

// firedTotal aggregates events fired across all engines, flushed in batches
// when Run/RunUntil return so the hot loop never touches shared memory.
// cmd/kopibench reads it to report events/sec per experiment.
var firedTotal atomic.Uint64

// FiredTotal returns the process-wide count of events executed by engines
// whose Run/RunUntil calls have returned. It is safe to read concurrently
// with running engines; in-flight runs contribute only on return.
func FiredTotal() uint64 { return firedTotal.Load() }

// NewEngine returns an engine positioned at the simulation epoch.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful as a progress
// and runaway-detection metric in tests).
func (e *Engine) Fired() uint64 { return e.nFired }

// push inserts ev, sifting it up to its heap position.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !ev.less(&e.events[parent]) {
			break
		}
		e.events[i] = e.events[parent]
		i = parent
	}
	e.events[i] = ev
}

// pop removes and returns the earliest event. The caller must have checked
// len(e.events) > 0. The vacated tail slot's closure is cleared so the heap's
// spare capacity retains no references (it is the freelist for future
// pushes, not a root set).
func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n].fn = nil
	e.events = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return top
}

// siftDown places ev, notionally at the root, into its heap position.
func (e *Engine) siftDown(ev event) {
	h := e.events
	n := len(h)
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		// Find the smallest of up to four children.
		m := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h[c].less(&h[m]) {
				m = c
			}
		}
		if !h[m].less(&ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a causality violation is always a model bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event %v in the past", d))
	}
	e.At(e.now.Add(d), fn)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; a subsequent Run continues from where it stopped. The
// fired-event delta is flushed to FiredTotal immediately so a stopped
// engine's work is never invisible to process-wide accounting.
func (e *Engine) Stop() {
	e.stopped = true
	e.flushFired()
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.nFired++
	ev.fn()
	return true
}

// flushFired publishes this engine's fired-event delta to the global
// counter. Called on Run/RunUntil exit, never per event.
func (e *Engine) flushFired() {
	if d := e.nFired - e.flushed; d > 0 {
		firedTotal.Add(d)
		e.flushed = e.nFired
	}
}

// Run executes events until the queue drains or Stop is called, and returns
// the final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	e.flushFired()
	return e.now
}

// RunUntil executes events with timestamps not after deadline. The clock is
// left at min(deadline, time of last event). Events scheduled beyond the
// deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.flushFired()
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// NextAt returns the time of the earliest pending event, if any. The shard
// coordinator uses it to fast-forward barriers over dead air.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// AddFired credits n logical sub-events processed inside the currently
// running callback — the accounting half of batched dispatch: when one
// engine event drains a burst of n ring descriptors, the engine has done
// n+1 events' worth of simulated work for one heap pop, and events/s
// reporting (Fired, FiredTotal) must say so. Flushed with the ordinary
// fired-count delta at run and barrier exits.
func (e *Engine) AddFired(n int) {
	if n > 0 {
		e.nFired += uint64(n)
	}
}
