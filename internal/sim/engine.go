package sim

import (
	"container/heap"
	"fmt"
)

// An event is a callback scheduled at a point in virtual time. Events at the
// same instant fire in scheduling order (seq breaks ties), which keeps runs
// deterministic regardless of heap internals.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
//
// Engines are not safe for concurrent use; all model code runs inside event
// callbacks on the goroutine that calls Run or Step.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	nFired  uint64
}

// NewEngine returns an engine positioned at the simulation epoch.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful as a progress
// and runaway-detection metric in tests).
func (e *Engine) Fired() uint64 { return e.nFired }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a causality violation is always a model bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event %v in the past", d))
	}
	e.At(e.now.Add(d), fn)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; a subsequent Run continues from where it stopped.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.nFired++
	ev.fn()
	return true
}

// Run executes events until the queue drains or Stop is called, and returns
// the final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps not after deadline. The clock is
// left at min(deadline, time of last event). Events scheduled beyond the
// deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
