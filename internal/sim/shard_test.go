package sim

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestShardedBasics drives two shards through local and cross-bucket events
// and checks clocks, delivery, and accounting.
func TestShardedBasics(t *testing.T) {
	s := NewSharded(2, 4, Microsecond)
	// Shards run on parallel goroutines inside an epoch, so a shared
	// recorder needs a lock; only membership is asserted.
	var mu sync.Mutex
	var got []string
	record := func(ev string) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}
	for b := 0; b < 4; b++ {
		b := b
		s.EngineFor(b).At(Time(b)*Time(100*Nanosecond), func() {
			record(fmt.Sprintf("local%d", b))
		})
	}
	// Setup-time cross-bucket send: delivered before the first epoch runs.
	s.Send(0, 3, Time(2*Microsecond), func() { record("mail0->3") })
	end := s.RunUntil(Time(3 * Microsecond))
	if end != Time(3*Microsecond) {
		t.Fatalf("RunUntil returned %v", end)
	}
	if s.Now() != Time(3*Microsecond) {
		t.Fatalf("Now = %v", s.Now())
	}
	// Buckets 0..3 interleave across two engines but each engine fires its
	// own events in time order; with one goroutine per run observing both,
	// the slice order here is the per-shard merge (0,2 on shard 0; 1,3 on
	// shard 1). Only membership and the mail's presence are asserted.
	want := map[string]bool{"local0": true, "local1": true, "local2": true, "local3": true, "mail0->3": true}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("unexpected event %q in %v", g, got)
		}
	}
	if s.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", s.Fired())
	}
	if s.Delivered() != 1 || s.MailSent(s.ShardOf(0)) != 1 || s.MailRecv(s.ShardOf(3)) != 1 {
		t.Fatalf("mail accounting: delivered=%d sent=%d recv=%d",
			s.Delivered(), s.MailSent(s.ShardOf(0)), s.MailRecv(s.ShardOf(3)))
	}
	if s.PairSent(s.ShardOf(0), s.ShardOf(3)) != 1 {
		t.Fatalf("pairSent = %d", s.PairSent(s.ShardOf(0), s.ShardOf(3)))
	}
}

// TestShardedRunDrains checks Run executes chained cross-shard work to
// completion and reports the final clock like Engine.Run does.
func TestShardedRunDrains(t *testing.T) {
	s := NewSharded(4, 8, Microsecond)
	hops := 0
	var hop func(b int)
	hop = func(b int) {
		hops++
		if hops >= 10 {
			return
		}
		now := s.EngineFor(b).Now()
		next := (b + 3) % 8
		s.Send(b, next, now.Add(2*Microsecond), func() { hop(next) })
	}
	s.EngineFor(0).At(0, func() { hop(0) })
	end := s.Run()
	if hops != 10 {
		t.Fatalf("hops = %d", hops)
	}
	// 9 hops of 2µs each; the final clock is the last hop's delivery time.
	if end != Time(18*Microsecond) {
		t.Fatalf("Run returned %v", end)
	}
	if s.Delivered() != 9 {
		t.Fatalf("Delivered = %d", s.Delivered())
	}
}

// TestShardedLookaheadViolationPanics asserts the barrier causality guard:
// a cross-shard send targeting a time inside the current epoch is a model
// bug and must panic rather than silently reorder.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	s := NewSharded(2, 2, Microsecond)
	s.EngineFor(0).At(Time(100*Nanosecond), func() {
		defer func() {
			if recover() == nil {
				t.Error("send inside the epoch did not panic")
			}
		}()
		s.Send(0, 1, Time(500*Nanosecond), func() {})
	})
	s.RunUntil(Time(Microsecond))
}

// TestShardedStopAtBarrier checks Stop from model code ends the run at the
// next barrier with pending work intact, and a later run resumes it.
func TestShardedStopAtBarrier(t *testing.T) {
	s := NewSharded(2, 2, Microsecond)
	fired := make([]bool, 2)
	s.EngineFor(0).At(Time(100*Nanosecond), func() {
		fired[0] = true
		s.Stop()
	})
	s.EngineFor(1).At(Time(5*Microsecond), func() { fired[1] = true })
	s.RunUntil(Time(10 * Microsecond))
	if !fired[0] || fired[1] {
		t.Fatalf("after stop: fired = %v", fired)
	}
	s.RunUntil(Time(10 * Microsecond))
	if !fired[1] {
		t.Fatal("resumed run did not fire the pending event")
	}
}

// TestShardedFiredTotalFlushedAtBarriers is the shard-aware FiredTotal
// satellite: an event observing the global counter mid-run (several epochs
// after another shard's burst, batched sub-events included) must see that
// work already published, because every barrier exit flushes each shard.
func TestShardedFiredTotalFlushedAtBarriers(t *testing.T) {
	s := NewSharded(2, 2, Microsecond)
	base := FiredTotal()
	for i := 0; i < 5; i++ {
		s.EngineFor(0).At(Time(i)*Time(100*Nanosecond), func() {
			s.EngineFor(0).AddFired(9) // one dispatch draining a 10-unit burst
		})
	}
	var seen uint64
	s.EngineFor(1).At(Time(4*Microsecond), func() { seen = FiredTotal() - base })
	s.RunUntil(Time(5 * Microsecond))
	if seen < 50 {
		t.Fatalf("mid-run FiredTotal delta = %d, want >= 50 (5 dispatches x 10 units flushed at barriers)", seen)
	}
	if got := FiredTotal() - base; got != s.Fired() {
		t.Fatalf("final FiredTotal delta %d != aggregate Fired %d", got, s.Fired())
	}
}

// TestEngineStopFlushesFiredTotal covers the other flush point: an engine
// stepped manually and then stopped publishes its delta without any
// Run/RunUntil return.
func TestEngineStopFlushesFiredTotal(t *testing.T) {
	base := FiredTotal()
	e := NewEngine()
	e.At(0, func() { e.AddFired(4) })
	e.Step()
	e.Stop()
	if got := FiredTotal() - base; got != 5 {
		t.Fatalf("FiredTotal delta after Stop = %d, want 5", got)
	}
}

// shardTraceEntry is one fired event in a bucket's execution trace.
type shardTraceEntry struct {
	At      Time
	Payload int
}

// shardScheduleRun executes one randomized cross-bucket schedule on nShards
// shards and returns the per-bucket traces, the merge journal, the total
// fired count and the final time. The schedule itself is a function of
// (seed, buckets) only — every random draw is made from a per-bucket RNG in
// bucket-deterministic order — so any difference between shard counts is a
// coordinator bug.
func shardScheduleRun(seed int64, nShards, buckets int) ([][]shardTraceEntry, []MailStamp, uint64, Time) {
	const (
		epoch    = Duration(Microsecond)
		quantum  = Duration(250 * Nanosecond)
		chains   = 3
		perBurst = 120 // event budget per bucket; chains die beyond it
	)
	s := NewSharded(nShards, buckets, epoch)
	s.EnableJournal()
	traces := make([][]shardTraceEntry, buckets)
	rngs := make([]*RNG, buckets)
	budget := make([]int, buckets)
	payload := make([]int, buckets)
	for b := 0; b < buckets; b++ {
		rngs[b] = NewRNG(seed, fmt.Sprintf("shard-prop-bucket%d", b))
	}
	var step func(b int)
	step = func(b int) {
		eng := s.EngineFor(b)
		now := eng.Now()
		payload[b]++
		traces[b] = append(traces[b], shardTraceEntry{At: now, Payload: payload[b]})
		if budget[b]++; budget[b] >= perBurst {
			return
		}
		r := rngs[b]
		switch p := r.Float64(); {
		case p < 0.55:
			// Local reschedule, jitter 0 included: same-instant tie-breaks.
			eng.At(now.Add(Duration(r.Intn(5))*quantum), func() { step(b) })
		case p < 0.90:
			dst := r.Intn(buckets)
			t := now.Add(epoch + Duration(r.Intn(8))*quantum)
			s.Send(b, dst, t, func() { step(dst) })
		default:
			// Chain dies.
		}
	}
	for b := 0; b < buckets; b++ {
		for c := 0; c < chains; c++ {
			b := b
			s.EngineFor(b).At(Time(rngs[b].Intn(40))*Time(quantum), func() { step(b) })
		}
	}
	end := s.Run()
	return traces, s.Journal(), s.Fired(), end
}

// TestShardMergeProperty is the merge property test: random cross-shard
// event schedules must produce byte-identical per-bucket firing orders
// (including same-timestamp tie-breaks), an identical merge journal, an
// identical total event count, and an identical final clock at every shard
// count — N ∈ {1, 2, 4, 8} — because the (time, srcBucket, seq) stamp never
// mentions shards.
func TestShardMergeProperty(t *testing.T) {
	const buckets = 16
	for _, seed := range []int64{1, 7, 42} {
		refTraces, refJournal, refFired, refEnd := shardScheduleRun(seed, 1, buckets)
		if len(refJournal) == 0 {
			t.Fatalf("seed %d: schedule produced no cross-shard mail — property not exercised", seed)
		}
		for _, n := range []int{2, 4, 8} {
			traces, journal, fired, end := shardScheduleRun(seed, n, buckets)
			if fired != refFired {
				t.Errorf("seed %d shards %d: fired %d != %d at 1 shard", seed, n, fired, refFired)
			}
			if end != refEnd {
				t.Errorf("seed %d shards %d: final time %v != %v at 1 shard", seed, n, end, refEnd)
			}
			if !reflect.DeepEqual(journal, refJournal) {
				t.Errorf("seed %d shards %d: merge journal diverges (%d vs %d entries)", seed, n, len(journal), len(refJournal))
			}
			for b := range traces {
				if !reflect.DeepEqual(traces[b], refTraces[b]) {
					t.Errorf("seed %d shards %d: bucket %d firing order diverges (%d vs %d events)",
						seed, n, b, len(traces[b]), len(refTraces[b]))
					break
				}
			}
		}
	}
}

// TestShardedDeadAirFastForward checks sparse workloads do not pay one
// barrier per epoch of empty virtual time.
func TestShardedDeadAirFastForward(t *testing.T) {
	s := NewSharded(2, 2, Microsecond)
	fired := false
	s.EngineFor(1).At(Time(Second), func() { fired = true })
	s.RunUntil(Time(Second))
	if !fired {
		t.Fatal("distant event did not fire")
	}
	if s.Epochs() > 4 {
		t.Fatalf("sparse run took %d epochs; dead-air fast-forward broken", s.Epochs())
	}
}
