package sim

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// This file implements the sharded engine: conservative parallel
// discrete-event simulation with a deterministic cross-shard merge
// (DESIGN.md §8).
//
// The unit of determinism is the *bucket* — a fixed logical partition of the
// world (in arch worlds, the RSS hash bucket a flow steers to). The unit of
// parallelism is the *shard* — one Engine driven on its own goroutine.
// Buckets map onto shards by bucket % N, so the bucket space never changes
// when the shard count does; everything observable per bucket, and therefore
// every table aggregated in bucket order, is byte-identical at any N,
// including N=1.
//
// Shards advance in lockstep epochs under a virtual-time barrier. Within an
// epoch a shard may only touch its own buckets' state; communication between
// buckets goes through Send, which stages the event in the source shard's
// mailbox stamped (time, srcBucket, per-bucket seq). At each barrier the
// coordinator drains all mailboxes in one sorted pass — ordered by exactly
// that stamp — and schedules the events into the destination engines before
// the next epoch runs. Because the stamp does not mention shards, the drain
// order (the merge journal) is invariant under resharding.
//
// Causality is kept by a lookahead rule: a send fired inside the epoch
// [start, end) must target a time >= end, so no shard can receive an event
// in its own past. Send panics otherwise — a lookahead violation is always a
// model bug, the cross-bucket latency (wire, fabric) must be at least one
// epoch long.

// MailStamp identifies one cross-shard delivery in merge order: the triple
// the barrier drain sorts by, plus the destination bucket. The journal of
// stamps is the protocol's determinism witness — it must be byte-identical
// at any shard count (TestShardMergeProperty).
type MailStamp struct {
	At  Time
	Src int    // source bucket
	Seq uint64 // per-source-bucket send sequence
	Dst int    // destination bucket
}

// crossEvent is one staged cross-bucket event awaiting a barrier.
type crossEvent struct {
	at  Time
	src int
	seq uint64
	dst int
	fn  func()
}

// shardState is one shard: its engine, its outbound mailbox, and its
// barrier accounting. The engine and outbox are touched only by the shard's
// goroutine during an epoch and only by the coordinator between epochs.
type shardState struct {
	eng       *Engine
	out       []crossEvent // staged sends, drained at the next barrier
	epochEnd  Time         // exclusive bound of the epoch being run (lookahead floor)
	mailSent  uint64
	mailRecv  uint64
	stalls    uint64 // epochs this shard sat idle at the barrier while others fired
	firedPrev uint64
	work      chan Time
}

// Sharded coordinates N engines advancing in lockstep epochs with a
// deterministic cross-shard merge. Construct with NewSharded; schedule
// bucket-local work directly on EngineFor(bucket) and cross-bucket work with
// Send. Not safe for concurrent use except where noted: Send may be called
// from model code running inside any shard's epoch, everything else belongs
// to the single driving goroutine.
type Sharded struct {
	shards   []*shardState
	buckets  int
	epoch    Duration
	seqOf    []uint64   // per-bucket send sequence counters
	pairSent [][]uint64 // [srcShard][dstShard] cumulative mailbox traffic

	frontier  Time // exclusive virtual-time bound every shard has completed
	last      Time // virtual time reported by Now (deadline of the last run)
	epochs    uint64
	delivered uint64

	scratch   []crossEvent
	journal   []MailStamp
	journalOn bool
	stopReq   atomic.Bool
	wg        sync.WaitGroup
}

// NewSharded builds a coordinator over `shards` fresh engines and a fixed
// logical space of `buckets` (buckets >= shards; keep buckets constant while
// varying shards to get identical results). epoch is the barrier quantum:
// every cross-bucket latency in the model must be >= epoch.
func NewSharded(shards, buckets int, epoch Duration) *Sharded {
	if shards < 1 {
		panic("sim: sharded engine needs at least one shard")
	}
	if buckets < shards {
		panic(fmt.Sprintf("sim: %d buckets cannot cover %d shards", buckets, shards))
	}
	if epoch <= 0 {
		panic("sim: barrier epoch must be positive")
	}
	s := &Sharded{
		buckets:  buckets,
		epoch:    epoch,
		seqOf:    make([]uint64, buckets),
		shards:   make([]*shardState, shards),
		pairSent: make([][]uint64, shards),
	}
	for i := range s.shards {
		s.shards[i] = &shardState{eng: NewEngine()}
		s.pairSent[i] = make([]uint64, shards)
	}
	return s
}

// Shards returns the shard (engine) count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Buckets returns the size of the logical bucket space.
func (s *Sharded) Buckets() int { return s.buckets }

// Epoch returns the barrier quantum.
func (s *Sharded) Epoch() Duration { return s.epoch }

// ShardOf returns the shard that owns a bucket.
func (s *Sharded) ShardOf(bucket int) int { return bucket % len(s.shards) }

// Engine returns shard i's engine.
func (s *Sharded) Engine(i int) *Engine { return s.shards[i].eng }

// EngineFor returns the engine owning a bucket — where that bucket's local
// events must be scheduled.
func (s *Sharded) EngineFor(bucket int) *Engine { return s.shards[s.ShardOf(bucket)].eng }

// Now returns the virtual time of the last completed run.
func (s *Sharded) Now() Time { return s.last }

// Send stages fn to run at time t on dstBucket's shard, stamped with
// srcBucket's next sequence number. It must be called from srcBucket's own
// shard (model code running inside an event, or setup code before any run).
// t must be at or after the next barrier — the lookahead rule — or Send
// panics.
func (s *Sharded) Send(srcBucket, dstBucket int, t Time, fn func()) {
	if srcBucket < 0 || srcBucket >= s.buckets || dstBucket < 0 || dstBucket >= s.buckets {
		panic(fmt.Sprintf("sim: send %d->%d outside bucket space [0,%d)", srcBucket, dstBucket, s.buckets))
	}
	st := s.shards[s.ShardOf(srcBucket)]
	if t < st.epochEnd {
		panic(fmt.Sprintf("sim: cross-shard send targeting %v violates lookahead (current epoch ends at %v; cross-bucket latency must be >= the %v barrier epoch)",
			t, st.epochEnd, s.epoch))
	}
	s.seqOf[srcBucket]++
	st.out = append(st.out, crossEvent{at: t, src: srcBucket, seq: s.seqOf[srcBucket], dst: dstBucket, fn: fn})
	st.mailSent++
}

// Stop makes the current Run/RunUntil return at the next barrier. Pending
// events and staged mail survive; a subsequent run continues. Safe to call
// from model code inside any shard.
func (s *Sharded) Stop() { s.stopReq.Store(true) }

// RunUntil advances all shards in lockstep epochs through deadline
// (inclusive, like Engine.RunUntil) and returns the deadline. Mail staged in
// the final epoch necessarily targets times beyond the deadline and is
// delivered at the start of the next run.
func (s *Sharded) RunUntil(deadline Time) Time {
	if bound := deadline + 1; bound > s.frontier {
		s.runLoop(bound, false)
	}
	if deadline > s.last {
		s.last = deadline
	}
	return s.last
}

// Run executes epochs until every shard's queue drains and no mail is
// staged (or Stop is called), then returns the final virtual time: the
// latest engine clock, matching Engine.Run's convention.
func (s *Sharded) Run() Time {
	const horizon = Time(1) << 62
	s.runLoop(horizon, true)
	var end Time
	for _, st := range s.shards {
		if st.eng.now > end {
			end = st.eng.now
		}
	}
	if end > s.last {
		s.last = end
	}
	return s.last
}

// runLoop is the barrier loop shared by Run and RunUntil: deliver staged
// mail, pick the next epoch bound, run all shards to it in parallel, repeat.
// bound is exclusive. With drain set the loop ends when nothing is pending
// anywhere; otherwise idle spans fast-forward to the next event (or to
// bound), so sparse workloads do not pay for empty barriers.
func (s *Sharded) runLoop(bound Time, drain bool) {
	s.stopReq.Store(false)
	stop := s.startWorkers()
	defer stop()
	for s.frontier < bound && !s.stopReq.Load() {
		s.deliver()
		next, ok := s.nextEvent()
		if !ok {
			if !drain {
				s.frontier = bound
			}
			return
		}
		if next >= bound {
			s.frontier = bound
			return
		}
		end := s.frontier + Time(s.epoch)
		if next >= end {
			// Dead air: jump the barrier grid to the next event's instant.
			// The choice depends only on the global minimum event time, so
			// it is identical at any shard count.
			end = next + 1
		}
		if end > bound {
			end = bound
		}
		s.runEpoch(end)
		s.frontier = end
		s.epochs++
		s.countStalls()
	}
}

// startWorkers launches one goroutine per shard for the duration of a run
// (none for a single shard) and returns the teardown.
func (s *Sharded) startWorkers() func() {
	if len(s.shards) == 1 {
		return func() {}
	}
	for _, st := range s.shards {
		st.work = make(chan Time)
		go func(st *shardState) {
			for end := range st.work {
				st.eng.RunUntil(end - 1)
				s.wg.Done()
			}
		}(st)
	}
	return func() {
		for _, st := range s.shards {
			close(st.work)
		}
	}
}

// runEpoch runs every shard through [frontier, end) and blocks until all
// reach the barrier. Engine.RunUntil flushes each shard's fired-event count
// on return, so FiredTotal is exact at every barrier, not only at run end.
func (s *Sharded) runEpoch(end Time) {
	for _, st := range s.shards {
		st.epochEnd = end
	}
	if len(s.shards) == 1 {
		s.shards[0].eng.RunUntil(end - 1)
		return
	}
	s.wg.Add(len(s.shards))
	for _, st := range s.shards {
		st.work <- end
	}
	s.wg.Wait()
}

// deliver drains every shard's mailbox in one sorted pass — (time,
// srcBucket, seq), a total order since each bucket's sequence is unique —
// and schedules the events into their destination engines in exactly that
// order, so destination-local tie-breaking (engine seq) inherits it.
func (s *Sharded) deliver() {
	s.scratch = s.scratch[:0]
	for _, st := range s.shards {
		s.scratch = append(s.scratch, st.out...)
		for i := range st.out {
			st.out[i].fn = nil // the copy in scratch owns the closure now
		}
		st.out = st.out[:0]
	}
	if len(s.scratch) == 0 {
		return
	}
	slices.SortFunc(s.scratch, func(a, b crossEvent) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.src != b.src {
			return a.src - b.src
		}
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
	for i := range s.scratch {
		ev := s.scratch[i]
		dst := s.shards[s.ShardOf(ev.dst)]
		dst.mailRecv++
		s.pairSent[s.ShardOf(ev.src)][s.ShardOf(ev.dst)]++
		dst.eng.At(ev.at, ev.fn)
		if s.journalOn {
			s.journal = append(s.journal, MailStamp{At: ev.at, Src: ev.src, Seq: ev.seq, Dst: ev.dst})
		}
		s.scratch[i].fn = nil
	}
	s.delivered += uint64(len(s.scratch))
}

// nextEvent returns the earliest pending event time across all shards.
// Staged mail never matters here: deliver ran first, so mailboxes are empty.
func (s *Sharded) nextEvent() (Time, bool) {
	var min Time
	ok := false
	for _, st := range s.shards {
		if t, has := st.eng.NextAt(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// countStalls charges a barrier stall to every shard that fired nothing in
// an epoch where some other shard did — the load-imbalance signal nnetstat
// -shards reports.
func (s *Sharded) countStalls() {
	any := false
	for _, st := range s.shards {
		if st.eng.nFired != st.firedPrev {
			any = true
			break
		}
	}
	for _, st := range s.shards {
		if any && st.eng.nFired == st.firedPrev {
			st.stalls++
		}
		st.firedPrev = st.eng.nFired
	}
}

// Fired returns the aggregate event count across all shards, including
// batched sub-events credited with Engine.AddFired.
func (s *Sharded) Fired() uint64 {
	var n uint64
	for _, st := range s.shards {
		n += st.eng.Fired()
	}
	return n
}

// ShardFired returns shard i's event count.
func (s *Sharded) ShardFired(i int) uint64 { return s.shards[i].eng.Fired() }

// MailSent returns the cumulative cross-shard events staged by shard i.
func (s *Sharded) MailSent(i int) uint64 { return s.shards[i].mailSent }

// MailRecv returns the cumulative cross-shard events delivered to shard i.
func (s *Sharded) MailRecv(i int) uint64 { return s.shards[i].mailRecv }

// MailPending returns shard i's currently staged (undelivered) mail depth.
func (s *Sharded) MailPending(i int) int { return len(s.shards[i].out) }

// Stalls returns how many epochs shard i sat idle at the barrier while
// other shards fired events.
func (s *Sharded) Stalls(i int) uint64 { return s.shards[i].stalls }

// Epochs returns the number of barrier rounds completed.
func (s *Sharded) Epochs() uint64 { return s.epochs }

// Delivered returns the total cross-shard events merged through barriers.
func (s *Sharded) Delivered() uint64 { return s.delivered }

// PairSent returns the cumulative mailbox traffic from shard src to shard
// dst, counted at delivery.
func (s *Sharded) PairSent(src, dst int) uint64 { return s.pairSent[src][dst] }

// EnableJournal starts recording the merge journal (for determinism tests).
func (s *Sharded) EnableJournal() { s.journalOn = true }

// Journal returns the recorded merge journal: every cross-shard delivery in
// drain order.
func (s *Sharded) Journal() []MailStamp { return s.journal }
