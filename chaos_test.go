package norman_test

import (
	"errors"
	"reflect"
	"testing"

	"norman"
	"norman/internal/faults"
	"norman/internal/overload"
	"norman/internal/recovery"
	"norman/internal/sim"
)

// chaosResult is the fingerprint one soak run leaves behind: every externally
// visible count the composed subsystems produce. Two runs of the same seeded
// schedule must produce identical fingerprints.
type chaosResult struct {
	Delivered         int
	AdmissionRejected int
	DownRejected      int

	TxLost      uint64
	TxCorrupted uint64
	TxReordered uint64
	RingBursts  uint64

	Admitted    uint64
	Transitions uint64
	Signals     uint64
	Shed        uint64

	ReportClean      bool
	ReportInvariants bool
	ReportRejected   int
	RulesAfter       int
}

// chaosRun composes the three robustness layers this repo has grown — the
// PR 2 fault injector (wire loss/corrupt/reorder + ring-pressure bursts),
// the PR 4 crash/recovery machinery (control-plane kill + journal replay +
// reconciliation), and the overload governor (admission, watchdog,
// priority shedding) — into one seeded virtual-time schedule.
func chaosRun(t *testing.T) chaosResult {
	t.Helper()
	const horizon = 5 * sim.Millisecond

	sys := norman.New(norman.KOPI)
	sys.EnableRecovery()
	sys.EnableTelemetry()
	gov := sys.EnableOverload(overload.Config{
		MaxConnsPerTenant: 8,
		SampleEvery:       10 * sim.Microsecond,
		EscalateAfter:     1,
		ClearAfter:        2,
	})
	sys.UseEchoPeer()

	w := sys.World()
	inj := faults.New(w.Eng, w.NIC, w.LLC, faults.Config{
		Seed:  7,
		Label: "chaos",
		Tx:    faults.WireConfig{Loss: 0.05, Corrupt: 0.02, Reorder: 0.03, Duplicate: 0.02},
		Ring:  faults.RingConfig{Period: 250 * sim.Microsecond, Window: 1, DDIOLines: 2048},
	})
	inj.AttachTx()

	hi := sys.AddUser(1000, "hi")
	lo := sys.AddUser(1001, "lo")
	hiApp := sys.Spawn(hi, "hi-svc")
	loApp := sys.Spawn(lo, "lo-svc")

	// The qdisc arms both egress WFQ and the governor's ingress shedding:
	// class 1 (weight 8) is protected, class 2 (weight 1) is shed first.
	if err := sys.TCSet(norman.QdiscSpec{Kind: "wfq", Weights: map[uint32]float64{1: 8, 2: 1}},
		map[uint32]uint32{hi.UID: 1, lo.UID: 2}); err != nil {
		t.Fatal(err)
	}
	// A filter rule installed pre-crash: the reconciler must carry it across.
	if err := sys.IPTablesAppend(norman.Output, norman.Rule{Proto: "udp", DstPort: 9999, Action: "drop"}); err != nil {
		t.Fatal(err)
	}

	// Admission under budget: the low tenant offers 12 connections against
	// its 8-conn cap — exactly 4 must bounce with the typed error.
	res := chaosResult{}
	var conns []*norman.Conn
	for i := 0; i < 4; i++ {
		c, err := sys.Dial(hiApp, uint16(41000+i), 7)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	for i := 0; i < 12; i++ {
		c, err := sys.Dial(loApp, uint16(42000+i), 7)
		if err != nil {
			if !errors.Is(err, norman.ErrAdmission) {
				t.Fatalf("low-tenant dial %d = %v, want ErrAdmission", i, err)
			}
			res.AdmissionRejected++
			continue
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		c.OnReceive(func(norman.Delivery) { res.Delivered++ })
	}

	// Echo traffic across the whole horizon, spanning the outage.
	for i := 0; i < 1000; i++ {
		c := conns[i%len(conns)]
		sys.At(sim.Duration(i)*4*sim.Microsecond, func() { c.Send(512) })
	}

	// Kill the control plane mid-traffic; mutations bounce typed while it is
	// down; the restart replays the journal under ongoing wire faults and
	// ring pressure.
	var rep *recovery.Report
	sys.At(1500*sim.Microsecond, func() {
		if err := sys.CrashControlPlane(); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	sys.At(1700*sim.Microsecond, func() {
		if err := sys.IPTablesAppend(norman.Input, norman.Rule{Action: "count"}); errors.Is(err, norman.ErrControlPlaneDown) {
			res.DownRejected++
		}
		if _, err := sys.Dial(loApp, 43000, 7); errors.Is(err, norman.ErrControlPlaneDown) {
			res.DownRejected++
		}
	})
	sys.At(2100*sim.Microsecond, func() {
		r, err := sys.RestartControlPlane()
		if err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		rep = r
	})

	gov.Start(sim.Time(horizon))
	inj.Start(sim.Time(horizon))
	sys.RunFor(horizon)
	sys.Run() // drain in-flight echoes; the watchdog is paused for the drain

	res.TxLost = inj.Tx.Lost
	res.TxCorrupted = inj.Tx.Corrupted
	res.TxReordered = inj.Tx.Reordered
	res.RingBursts = inj.RingBursts

	snap := gov.Snapshot()
	res.Admitted = snap.Admitted
	res.Transitions = snap.Transitions
	res.Signals = snap.Signals
	res.Shed = snap.ShedPackets

	if rep == nil {
		t.Fatal("the restart never ran")
	}
	res.ReportClean = rep.Clean
	res.ReportInvariants = rep.InvariantsOK
	res.ReportRejected = rep.Rejected
	res.RulesAfter = len(sys.IPTablesList())
	return res
}

// TestChaosSoak is the composition gate: faults, crash recovery and overload
// control running in the same world must not break each other's invariants,
// and the whole composed schedule must stay deterministic.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak composes three subsystems over a 5ms schedule; skipped in -short")
	}
	r := chaosRun(t)

	// Admission stayed typed under pressure: 12 offered against the 8 cap.
	if r.AdmissionRejected != 4 {
		t.Errorf("admission rejected = %d, want 4", r.AdmissionRejected)
	}
	if r.Admitted != 12 {
		t.Errorf("admitted = %d, want 12 (4 hi + 8 lo)", r.Admitted)
	}
	// The outage refused both mutation kinds with the typed error, and the
	// reconciler counted them.
	if r.DownRejected != 2 {
		t.Errorf("typed down-rejections = %d, want 2", r.DownRejected)
	}
	if r.ReportRejected < 2 {
		t.Errorf("report rejected = %d, want >= 2", r.ReportRejected)
	}
	// Recovery invariants hold even with wire faults and ring bursts live.
	if !r.ReportClean || !r.ReportInvariants {
		t.Errorf("restart under pressure must reconcile clean with invariants ok: %+v", r)
	}
	if r.RulesAfter != 1 {
		t.Errorf("rules after recovery = %d, want the pre-crash rule", r.RulesAfter)
	}
	// The faults actually bit, and traffic still flowed through all of it.
	if r.TxLost == 0 || r.TxCorrupted == 0 || r.RingBursts == 0 {
		t.Errorf("fault layer idle: %+v", r)
	}
	if r.Delivered == 0 {
		t.Error("no echoes delivered through the chaos")
	}
	// The watchdog saw the ring bursts and cycled.
	if r.Transitions == 0 || r.Signals == 0 {
		t.Errorf("watchdog never reacted to pressure: %+v", r)
	}

	// And the entire composition is deterministic: a second execution of the
	// same seeded schedule leaves a byte-identical fingerprint.
	if r2 := chaosRun(t); !reflect.DeepEqual(r, r2) {
		t.Errorf("chaos soak not deterministic:\nrun1 %+v\nrun2 %+v", r, r2)
	}
}
