package norman_test

import (
	"errors"
	"reflect"
	"testing"

	"norman"
	"norman/internal/faults"
	"norman/internal/health"
	"norman/internal/nic"
	"norman/internal/overload"
	"norman/internal/recovery"
	"norman/internal/sim"
	"norman/internal/upgrade"
)

// chaosResult is the fingerprint one soak run leaves behind: every externally
// visible count the composed subsystems produce. Two runs of the same seeded
// schedule must produce identical fingerprints.
type chaosResult struct {
	Delivered         int
	AdmissionRejected int
	DownRejected      int

	TxLost      uint64
	TxCorrupted uint64
	TxReordered uint64
	RingBursts  uint64

	Admitted    uint64
	Transitions uint64
	Signals     uint64
	Shed        uint64

	ReportClean      bool
	ReportInvariants bool
	ReportRejected   int
	RulesAfter       int

	// PR 9 hardware-fault layer: injected fault counts, detection counters
	// and the full health-monitor snapshot (per-component rows included).
	LinkFlaps     uint64
	SRAMFlips     uint64
	DMAStalls     uint64
	TrapStorms    uint64
	CkFails       uint64
	CorruptServed uint64
	LinkDrops     uint64
	Health        norman.HealthStatus

	// PR 10 live-upgrade layer: the full status row — phase, generation and
	// every counter — after two mid-chaos upgrades (one crashed canary, one
	// clean commit).
	Upgrade norman.UpgradeStatus
}

// chaosRun composes the three robustness layers this repo has grown — the
// PR 2 fault injector (wire loss/corrupt/reorder + ring-pressure bursts),
// the PR 4 crash/recovery machinery (control-plane kill + journal replay +
// reconciliation), and the overload governor (admission, watchdog,
// priority shedding) — into one seeded virtual-time schedule.
func chaosRun(t *testing.T) chaosResult {
	t.Helper()
	const horizon = 5 * sim.Millisecond

	sys := norman.New(norman.KOPI)
	sys.EnableRecovery()
	sys.EnableTelemetry()
	gov := sys.EnableOverload(overload.Config{
		MaxConnsPerTenant: 8,
		SampleEvery:       10 * sim.Microsecond,
		EscalateAfter:     1,
		ClearAfter:        2,
	})
	sys.UseEchoPeer()

	// The PR 9 hardware layer: a flow cache with entries worth corrupting, a
	// cacheable ingress program worth storming, and the health monitor that
	// quarantines whichever component the schedule below degrades.
	if err := sys.EnableFlowCache(256); err != nil {
		t.Fatal(err)
	}
	hm := sys.EnableHealth(health.Config{
		SampleEvery:    10 * sim.Microsecond,
		EscalateAfter:  1,
		ProbationAfter: 4,
		RestoreAfter:   2,
	})
	// The PR 10 live-upgrade layer: a 300µs canary window so the first
	// upgrade's canary is still open when the control plane dies under it.
	sys.EnableLiveUpgrade(upgrade.Config{CanaryWindow: 300 * sim.Microsecond})

	w := sys.World()
	inj := faults.New(w.Eng, w.NIC, w.LLC, faults.Config{
		Seed:  7,
		Label: "chaos",
		Tx:    faults.WireConfig{Loss: 0.05, Corrupt: 0.02, Reorder: 0.03, Duplicate: 0.02},
		Ring:  faults.RingConfig{Period: 250 * sim.Microsecond, Window: 1, DDIOLines: 2048},
	})
	inj.AttachTx()
	// The hardware fault schedule, interleaved with the crash/restart: a link
	// flap well before the crash, an SRAM bit-flip burst after the restart
	// has replayed the journal (so the burst corrupts a cache repopulated
	// through recovery), a trap storm landing inside the flow-cache
	// quarantine window (while the slow path is actually running the stormed
	// machine), and a DMA stall near the end. Every class trips the monitor
	// at least once.
	inj.ScheduleLinkFlap(sim.Time(600*sim.Microsecond), 50*sim.Microsecond)
	inj.ScheduleSRAMBurst(sim.Time(2500*sim.Microsecond), 128)
	inj.ScheduleTrapStorm(nic.Ingress, sim.Time(2530*sim.Microsecond), 3, 2*sim.Microsecond, "chaos-storm")
	inj.ScheduleDMAStall(sim.Time(3800*sim.Microsecond), 100*sim.Microsecond)

	hi := sys.AddUser(1000, "hi")
	lo := sys.AddUser(1001, "lo")
	hiApp := sys.Spawn(hi, "hi-svc")
	loApp := sys.Spawn(lo, "lo-svc")

	// The qdisc arms both egress WFQ and the governor's ingress shedding:
	// class 1 (weight 8) is protected, class 2 (weight 1) is shed first.
	if err := sys.TCSet(norman.QdiscSpec{Kind: "wfq", Weights: map[uint32]float64{1: 8, 2: 1}},
		map[uint32]uint32{hi.UID: 1, lo.UID: 2}); err != nil {
		t.Fatal(err)
	}
	// A filter rule installed pre-crash: the reconciler must carry it across.
	if err := sys.IPTablesAppend(norman.Output, norman.Rule{Proto: "udp", DstPort: 9999, Action: "drop"}); err != nil {
		t.Fatal(err)
	}
	// An ingress filter rule: its compiled program is flow-invariant, so the
	// flow cache memoizes verdicts under it — the entries the SRAM burst
	// corrupts and the machine the trap storm arms traps into. Installed via
	// iptables (not a raw LoadProgram) so the journal replay reinstalls it
	// across the crash.
	if err := sys.IPTablesAppend(norman.Input, norman.Rule{Proto: "udp", DstPort: 9990, Action: "drop"}); err != nil {
		t.Fatal(err)
	}

	// Admission under budget: the low tenant offers 12 connections against
	// its 8-conn cap — exactly 4 must bounce with the typed error.
	res := chaosResult{}
	var conns []*norman.Conn
	for i := 0; i < 4; i++ {
		c, err := sys.Dial(hiApp, uint16(41000+i), 7)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	for i := 0; i < 12; i++ {
		c, err := sys.Dial(loApp, uint16(42000+i), 7)
		if err != nil {
			if !errors.Is(err, norman.ErrAdmission) {
				t.Fatalf("low-tenant dial %d = %v, want ErrAdmission", i, err)
			}
			res.AdmissionRejected++
			continue
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		c.OnReceive(func(norman.Delivery) { res.Delivered++ })
	}

	// Echo traffic across the whole horizon, spanning the outage.
	for i := 0; i < 1000; i++ {
		c := conns[i%len(conns)]
		sys.At(sim.Duration(i)*4*sim.Microsecond, func() { c.Send(512) })
	}

	// A same-policy live upgrade whose canary window straddles the crash
	// below: the control plane dies while watching, and the manager must
	// roll the flip back rather than leave an unsupervised generation live.
	sys.At(1400*sim.Microsecond, func() {
		if err := sys.StartLiveUpgrade(); err != nil {
			t.Errorf("upgrade 1: %v", err)
		}
	})

	// Kill the control plane mid-traffic; mutations bounce typed while it is
	// down; the restart replays the journal under ongoing wire faults and
	// ring pressure.
	var rep *recovery.Report
	sys.At(1500*sim.Microsecond, func() {
		if err := sys.CrashControlPlane(); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	sys.At(1700*sim.Microsecond, func() {
		if err := sys.IPTablesAppend(norman.Input, norman.Rule{Action: "count"}); errors.Is(err, norman.ErrControlPlaneDown) {
			res.DownRejected++
		}
		if _, err := sys.Dial(loApp, 43000, 7); errors.Is(err, norman.ErrControlPlaneDown) {
			res.DownRejected++
		}
	})
	sys.At(2100*sim.Microsecond, func() {
		r, err := sys.RestartControlPlane()
		if err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		rep = r
	})

	// The second upgrade, after the restart: with the control plane healthy
	// and the wire faults still live, this canary must ride out its window
	// and commit — faults on the wire are not faults in the generation.
	sys.At(3000*sim.Microsecond, func() {
		if err := sys.StartLiveUpgrade(); err != nil {
			t.Errorf("upgrade 2: %v", err)
		}
	})

	gov.Start(sim.Time(horizon))
	hm.Start(sim.Time(horizon))
	inj.Start(sim.Time(horizon))
	sys.RunFor(horizon)
	sys.Run() // drain in-flight echoes; the watchdog is paused for the drain

	res.TxLost = inj.Tx.Lost
	res.TxCorrupted = inj.Tx.Corrupted
	res.TxReordered = inj.Tx.Reordered
	res.RingBursts = inj.RingBursts
	res.LinkFlaps = inj.LinkFlaps
	res.SRAMFlips = inj.SRAMFlips
	res.DMAStalls = inj.DMAStalls
	res.TrapStorms = inj.TrapStorms
	if fc := w.NIC.FlowCache(); fc != nil {
		res.CkFails = fc.ChecksumFails
		res.CorruptServed = fc.CorruptServed
	}
	res.LinkDrops = w.NIC.RxLinkDrop
	res.Health = sys.HealthStatus()
	res.Upgrade = sys.UpgradeStatus()

	snap := gov.Snapshot()
	res.Admitted = snap.Admitted
	res.Transitions = snap.Transitions
	res.Signals = snap.Signals
	res.Shed = snap.ShedPackets

	if rep == nil {
		t.Fatal("the restart never ran")
	}
	res.ReportClean = rep.Clean
	res.ReportInvariants = rep.InvariantsOK
	res.ReportRejected = rep.Rejected
	res.RulesAfter = len(sys.IPTablesList())
	return res
}

// TestChaosSoak is the composition gate: faults, crash recovery and overload
// control running in the same world must not break each other's invariants,
// and the whole composed schedule must stay deterministic.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak composes three subsystems over a 5ms schedule; skipped in -short")
	}
	r := chaosRun(t)

	// Admission stayed typed under pressure: 12 offered against the 8 cap.
	if r.AdmissionRejected != 4 {
		t.Errorf("admission rejected = %d, want 4", r.AdmissionRejected)
	}
	if r.Admitted != 12 {
		t.Errorf("admitted = %d, want 12 (4 hi + 8 lo)", r.Admitted)
	}
	// The outage refused both mutation kinds with the typed error, and the
	// reconciler counted them.
	if r.DownRejected != 2 {
		t.Errorf("typed down-rejections = %d, want 2", r.DownRejected)
	}
	if r.ReportRejected < 2 {
		t.Errorf("report rejected = %d, want >= 2", r.ReportRejected)
	}
	// Recovery invariants hold even with wire faults and ring bursts live.
	if !r.ReportClean || !r.ReportInvariants {
		t.Errorf("restart under pressure must reconcile clean with invariants ok: %+v", r)
	}
	if r.RulesAfter != 2 {
		t.Errorf("rules after recovery = %d, want both pre-crash rules", r.RulesAfter)
	}
	// The faults actually bit, and traffic still flowed through all of it.
	if r.TxLost == 0 || r.TxCorrupted == 0 || r.RingBursts == 0 {
		t.Errorf("fault layer idle: %+v", r)
	}
	if r.Delivered == 0 {
		t.Error("no echoes delivered through the chaos")
	}
	// The watchdog saw the ring bursts and cycled.
	if r.Transitions == 0 || r.Signals == 0 {
		t.Errorf("watchdog never reacted to pressure: %+v", r)
	}
	// Every hardware fault class fired and left its mark.
	if r.LinkFlaps != 1 || r.DMAStalls != 1 || r.TrapStorms != 1 {
		t.Errorf("hardware schedule incomplete: flaps=%d stalls=%d storms=%d, want 1 each",
			r.LinkFlaps, r.DMAStalls, r.TrapStorms)
	}
	if r.SRAMFlips == 0 {
		t.Error("the SRAM burst corrupted no live entries")
	}
	if r.LinkDrops == 0 {
		t.Error("the link flap dropped no frames at the MAC")
	}
	// Detection, not service: with the monitor's checksum verification on,
	// every corrupted entry is caught before its verdict is served.
	if r.CkFails == 0 {
		t.Error("corrupted entries were never detected")
	}
	if r.CorruptServed != 0 {
		t.Errorf("%d corrupted verdicts served past verification", r.CorruptServed)
	}
	// The monitor cycled: link, flowcache and dma each quarantined and (the
	// faults being transient) failed back; the rows cover all four components.
	if !r.Health.Enabled {
		t.Fatal("health monitor not enabled")
	}
	if r.Health.Quarantines < 3 || r.Health.Failbacks < 3 {
		t.Errorf("health events: %d quarantines / %d failbacks, want >= 3 each: %+v",
			r.Health.Quarantines, r.Health.Failbacks, r.Health)
	}
	if len(r.Health.Components) != 4 {
		t.Fatalf("health rows = %d, want 4: %+v", len(r.Health.Components), r.Health.Components)
	}
	// The upgrade layer rode through the chaos: the first flip's canary was
	// orphaned by the crash and rolled back, the second committed cleanly
	// under live wire faults, and the same-policy flips warm-transferred the
	// flow cache both ways.
	if !r.Upgrade.Enabled {
		t.Fatal("live-upgrade subsystem not enabled")
	}
	if r.Upgrade.Upgrades != 2 || r.Upgrade.Commits != 1 || r.Upgrade.Rollbacks != 1 {
		t.Errorf("upgrade events: %d flips / %d commits / %d rollbacks, want 2/1/1: %+v",
			r.Upgrade.Upgrades, r.Upgrade.Commits, r.Upgrade.Rollbacks, r.Upgrade)
	}
	if r.Upgrade.Phase != "committed" {
		t.Errorf("final upgrade phase = %q, want committed", r.Upgrade.Phase)
	}
	if r.Upgrade.LastRollback == "" {
		t.Error("the crashed canary must record its rollback reason")
	}
	if r.Upgrade.WarmEntries == 0 {
		t.Error("same-policy flips must warm-transfer flow-cache entries")
	}
	if r.Upgrade.PauseDrops != 0 {
		t.Errorf("cutover pause overflowed %d frames", r.Upgrade.PauseDrops)
	}

	// And the entire composition is deterministic: a second execution of the
	// same seeded schedule leaves a byte-identical fingerprint.
	if r2 := chaosRun(t); !reflect.DeepEqual(r, r2) {
		t.Errorf("chaos soak not deterministic:\nrun1 %+v\nrun2 %+v", r, r2)
	}
}

// chaosTenantResult fingerprints one adversarial-tenant soak: per-tenant
// delivery and rejection counts plus the full merged tenant status rows.
type chaosTenantResult struct {
	VicDelivered int
	AdvDelivered int
	AdvRejected  int
	DownRejected int

	TxLost      uint64
	TxCorrupted uint64
	RingBursts  uint64

	ReportClean      bool
	ReportInvariants bool
	Tenants          []norman.TenantStatus
}

// chaosTenantRun layers the PR 7 isolation machinery under the chaos
// schedule: a weighted-scheduler world where a noisy tenant floods elephant
// flows through wire faults and a control-plane crash/restart, while a
// victim tenant keeps a steady trickle. The fingerprint includes the merged
// TenantsStatus rows, so any map-order or accounting nondeterminism in the
// scheduler, cache partition or governor shows up as a DeepEqual failure.
func chaosTenantRun(t *testing.T) chaosTenantResult {
	t.Helper()
	const horizon = 5 * sim.Millisecond

	sys := norman.New(norman.KOPI)
	sys.EnableRecovery()
	sys.EnableOverload(overload.Config{
		MaxConnsPerTenant: 24,
		SampleEvery:       10 * sim.Microsecond,
		EscalateAfter:     1,
		ClearAfter:        2,
	})
	if err := sys.EnableTenantIsolation(map[uint32]int{1: 7, 2: 1}); err != nil {
		t.Fatal(err)
	}
	sys.UseEchoPeer()

	w := sys.World()
	inj := faults.New(w.Eng, w.NIC, w.LLC, faults.Config{
		Seed:  7,
		Label: "chaos-tenant",
		Tx:    faults.WireConfig{Loss: 0.05, Corrupt: 0.02, Reorder: 0.03},
		Ring:  faults.RingConfig{Period: 250 * sim.Microsecond, Window: 1, DDIOLines: 2048},
	})
	inj.AttachTx()

	vic := sys.AddUser(1000, "victim")
	adv := sys.AddUser(1001, "adversary")
	sys.AssignTenant(vic, 1)
	sys.AssignTenant(adv, 2)
	vicApp := sys.Spawn(vic, "victim-svc")
	advApp := sys.Spawn(adv, "adversary-svc")

	res := chaosTenantResult{}
	var vicConns, advConns []*norman.Conn
	for i := 0; i < 8; i++ {
		c, err := sys.Dial(vicApp, uint16(41000+i), 7)
		if err != nil {
			t.Fatal(err)
		}
		c.OnReceive(func(norman.Delivery) { res.VicDelivered++ })
		vicConns = append(vicConns, c)
	}
	// The adversary offers well past its weight-1 DDIO ring share (which
	// bites before the 24-conn cap); the excess must bounce typed, and the
	// victim's dials above were untouched by it.
	for i := 0; i < 32; i++ {
		c, err := sys.Dial(advApp, uint16(42000+i), 7)
		if err != nil {
			if !errors.Is(err, norman.ErrAdmission) {
				t.Fatalf("adversary dial %d = %v, want ErrAdmission", i, err)
			}
			res.AdvRejected++
			continue
		}
		c.OnReceive(func(norman.Delivery) { res.AdvDelivered++ })
		advConns = append(advConns, c)
	}

	// The victim trickles; the adversary floods full frames 4x as fast.
	for i := 0; i < 500; i++ {
		c := vicConns[i%len(vicConns)]
		sys.At(sim.Duration(i)*8*sim.Microsecond, func() { c.Send(256) })
	}
	for i := 0; i < 2000; i++ {
		c := advConns[i%len(advConns)]
		sys.At(sim.Duration(i)*2*sim.Microsecond, func() { c.Send(1460) })
	}

	// Crash/restart mid-flood: the journal replays under the adversary's
	// pressure and the tenant machinery survives the control-plane bounce.
	var rep *recovery.Report
	sys.At(1500*sim.Microsecond, func() {
		if err := sys.CrashControlPlane(); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	sys.At(1700*sim.Microsecond, func() {
		if _, err := sys.Dial(advApp, 43000, 7); errors.Is(err, norman.ErrControlPlaneDown) {
			res.DownRejected++
		}
	})
	sys.At(2100*sim.Microsecond, func() {
		r, err := sys.RestartControlPlane()
		if err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		rep = r
	})

	inj.Start(sim.Time(horizon))
	sys.RunFor(horizon)
	sys.Run()

	res.TxLost = inj.Tx.Lost
	res.TxCorrupted = inj.Tx.Corrupted
	res.RingBursts = inj.RingBursts
	if rep == nil {
		t.Fatal("the restart never ran")
	}
	res.ReportClean = rep.Clean
	res.ReportInvariants = rep.InvariantsOK
	res.Tenants = sys.TenantsStatus()
	return res
}

// TestChaosAdversarialTenant gates the isolation machinery's composition with
// the chaos layers: the noisy tenant's excess bounces typed, the victim's
// echoes keep flowing through faults and the crash, the weighted scheduler's
// grant split favors whoever offered more without starving the other, and
// the complete fingerprint — including every merged TenantsStatus row — is
// byte-identical across two executions of the same seeded schedule.
func TestChaosAdversarialTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial-tenant soak runs a 5ms composed schedule; skipped in -short")
	}
	r := chaosTenantRun(t)

	if r.AdvRejected != 19 {
		t.Errorf("adversary rejected = %d, want 19 (32 offered vs the weight-1 DDIO ring share)", r.AdvRejected)
	}
	if r.DownRejected != 1 {
		t.Errorf("typed down-rejections = %d, want 1", r.DownRejected)
	}
	if !r.ReportClean || !r.ReportInvariants {
		t.Errorf("restart under adversarial load must reconcile clean: %+v", r)
	}
	if r.TxLost == 0 || r.TxCorrupted == 0 || r.RingBursts == 0 {
		t.Errorf("fault layer idle: %+v", r)
	}
	// Both tenants made progress: the adversary could not starve the victim,
	// and the scheduler did not starve the adversary either.
	if r.VicDelivered == 0 || r.AdvDelivered == 0 {
		t.Errorf("deliveries vic=%d adv=%d, want both nonzero", r.VicDelivered, r.AdvDelivered)
	}
	// The merged status rows cover exactly the two tenants, in order, and the
	// scheduler actually granted both.
	if len(r.Tenants) != 2 || r.Tenants[0].Tenant != 1 || r.Tenants[1].Tenant != 2 {
		t.Fatalf("tenant rows = %+v, want tenants 1 and 2", r.Tenants)
	}
	if r.Tenants[0].PipeGrants == 0 || r.Tenants[1].PipeGrants == 0 {
		t.Errorf("pipe grants vic=%d adv=%d, want both nonzero",
			r.Tenants[0].PipeGrants, r.Tenants[1].PipeGrants)
	}
	if r.Tenants[0].Weight != 7 || r.Tenants[1].Weight != 1 {
		t.Errorf("weights = %d/%d, want 7/1", r.Tenants[0].Weight, r.Tenants[1].Weight)
	}

	if r2 := chaosTenantRun(t); !reflect.DeepEqual(r, r2) {
		t.Errorf("adversarial-tenant soak not deterministic:\nrun1 %+v\nrun2 %+v", r, r2)
	}
}
