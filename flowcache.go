package norman

// FlowCacheTenantStatus is one tenant's slice of the flow cache: occupancy
// against its partition quota plus its hit/install/evict/deny counters.
type FlowCacheTenantStatus struct {
	Tenant   uint32 `json:"tenant"`
	Used     int    `json:"used"`
	Quota    int    `json:"quota"`
	Hits     uint64 `json:"hits"`
	Installs uint64 `json:"installs"`
	Evicts   uint64 `json:"evictions"`
	Denied   uint64 `json:"denied"`
}

// FlowCacheStatus is the NIC flow cache's merged view for ctl and nnetstat:
// global lookup/install/evict accounting plus per-tenant partition rows when
// tenant isolation partitions the cache.
type FlowCacheStatus struct {
	Enabled       bool                    `json:"enabled"`
	Capacity      int                     `json:"capacity"`
	Entries       int                     `json:"entries"`
	Partitioned   bool                    `json:"partitioned"`
	Hits          uint64                  `json:"hits"`
	Misses        uint64                  `json:"misses"`
	Installs      uint64                  `json:"installs"`
	Evictions     uint64                  `json:"evictions"`
	Invalidations uint64                  `json:"invalidations"`
	Denied        uint64                  `json:"denied"`
	Tenants       []FlowCacheTenantStatus `json:"tenants,omitempty"`
}

// EnableFlowCache installs the NIC's exact-match flow cache with at least
// `entries` slots (rounded up to a power-of-two bucket count), charged
// against the on-NIC SRAM budget. Established flows then skip overlay
// interpretation at single-lookup cost; the first packet of every flow still
// runs the full chain (the kernel slow path) and installs the entry. When
// tenant isolation is enabled — before or after this call — the cache's
// capacity is partitioned by the same tenant weights, and eviction never
// crosses a partition. Enable before EnableTelemetry so the flowcache.*
// metric series register.
func (s *System) EnableFlowCache(entries int) error {
	if err := s.w.NIC.EnableFlowCache(entries); err != nil {
		return err
	}
	if ts := s.w.NIC.TenantScheduler(); ts != nil {
		return s.w.NIC.FlowCache().SetQuotas(ts.Weights())
	}
	return nil
}

// FlowCacheEnabled reports whether the NIC flow cache is installed.
func (s *System) FlowCacheEnabled() bool { return s.w.NIC.FlowCache() != nil }

// FlowCacheStatus snapshots the flow cache. Enabled=false (all else zero)
// when no cache is installed.
func (s *System) FlowCacheStatus() FlowCacheStatus {
	fc := s.w.NIC.FlowCache()
	if fc == nil {
		return FlowCacheStatus{}
	}
	st := FlowCacheStatus{
		Enabled:       true,
		Capacity:      fc.Capacity(),
		Entries:       fc.Len(),
		Partitioned:   fc.Quotas() != nil,
		Hits:          fc.Hits,
		Misses:        fc.Misses,
		Installs:      fc.Installs,
		Evictions:     fc.Evictions,
		Invalidations: fc.Invalidations,
		Denied:        fc.Denied,
	}
	for _, ts := range fc.TenantStats() {
		st.Tenants = append(st.Tenants, FlowCacheTenantStatus{
			Tenant: ts.Tenant, Used: ts.Used, Quota: ts.Quota,
			Hits: ts.Hits, Installs: ts.Installs, Evicts: ts.Evicts, Denied: ts.Denied,
		})
	}
	return st
}
