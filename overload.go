package norman

import (
	"norman/internal/overload"
	"norman/internal/telemetry"
)

// ErrAdmission re-exports the typed admission-rejection sentinel so API
// users can errors.Is against the public package.
var ErrAdmission = overload.ErrAdmission

// EnableOverload attaches the overload governor: Dial admission consults its
// budgets (DDIO ring share, per-tenant connection caps, watchdog
// saturation), TCSet additionally installs the priority-aware ingress shed
// policy, and the watchdog — once started with Overload().Start — drives
// watermark backpressure to subscribed transport streams. Idempotent;
// returns the governor either way.
//
// The watchdog samples on a virtual-time timer, so it keeps the engine
// non-quiescent: Run pauses it for the drain and resumes it after, while
// bounded stepping (RunFor, the ctl server, experiment horizons) runs it
// live.
func (s *System) EnableOverload(cfg overload.Config) *overload.Governor {
	if s.gov == nil {
		s.gov = overload.NewGovernor(s.w.Eng, s.w.NIC, s.w.LLC, cfg)
		if s.w.Tracer != nil {
			s.gov.SetTracer(s.w.Tracer)
		}
		if s.reg != nil {
			s.gov.RegisterMetrics(s.reg, telemetry.Labels{"arch": s.a.Name()})
		}
	}
	return s.gov
}

// Overload returns the overload governor, nil before EnableOverload.
func (s *System) Overload() *overload.Governor { return s.gov }
