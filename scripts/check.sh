#!/bin/sh
# check.sh — the repo's full verification gate: build, vet, the tier-1 test
# suite, and a race-detector pass over the packages that run worlds on
# parallel goroutines (the experiment harness worker pool and the engines it
# fans out). `make check` wraps this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
# The pool defaults to GOMAXPROCS workers; force a wide pool so the race
# pass exercises real interleavings even on small machines.
NORMAN_WORKERS=8 go test -race -count=1 ./internal/sim/... ./internal/experiments/...
