#!/bin/sh
# check.sh — the repo's full verification gate: build, vet, the tier-1 test
# suite, and a race-detector pass over the packages that run worlds on
# parallel goroutines (the experiment harness worker pool and the engines it
# fans out). `make check` wraps this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
# The pool defaults to GOMAXPROCS workers; force a wide pool so the race
# pass exercises real interleavings even on small machines.
NORMAN_WORKERS=8 go test -race -count=1 ./internal/sim/... ./internal/experiments/... ./internal/faults/...
# Fault-injection determinism under race at an explicit non-default seed:
# the E9 table must be byte-identical sequentially and at any pool width.
NORMAN_WORKERS=8 NORMAN_FAULT_SEED=7 go test -race -count=1 -run 'E9|Fault|Trap|Abort' ./internal/experiments/... ./internal/faults/... ./internal/transport/... ./internal/nic/... ./internal/overlay/...
