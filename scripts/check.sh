#!/bin/sh
# check.sh — the repo's full verification gate: format, build, vet, docs
# lint, the tier-1 test suite, a race-detector pass over the packages that
# run worlds on parallel goroutines, and an end-to-end pcap smoke test
# against a live daemon. `make check` wraps this.
set -eux

cd "$(dirname "$0")/.."

# Formatting gate: gofmt must be a no-op across the tree.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" "$unformatted" >&2
	exit 1
fi

go build ./...
go vet ./...

# docs-lint: every package (internal/, cmd/, examples/, root) must carry a
# package doc comment. Asked of the toolchain itself — go/doc's extraction,
# via `go list -f {{.Doc}}` — so a comment the parser would not attach to
# the package clause (blank line in between, wrong file, //go:build footgun)
# fails here exactly as it would render empty in godoc.
undocumented=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep -v '^$' || true)
if [ -n "$undocumented" ]; then
	echo "docs-lint: packages lack a doc comment:" "$undocumented" >&2
	exit 1
fi

go test ./...
# The pool defaults to GOMAXPROCS workers; force a wide pool so the race
# pass exercises real interleavings even on small machines.
NORMAN_WORKERS=8 go test -race -count=1 ./internal/sim/... ./internal/experiments/... ./internal/faults/...
# Fault-injection determinism under race at an explicit non-default seed:
# the E9 table must be byte-identical sequentially and at any pool width.
NORMAN_WORKERS=8 NORMAN_FAULT_SEED=7 go test -race -count=1 -run 'E9|Fault|Trap|Abort' ./internal/experiments/... ./internal/faults/... ./internal/transport/... ./internal/nic/... ./internal/overlay/...
# Crash-recovery determinism under race at the same non-default seed: the
# E10 table (crash, journal replay, reconciliation) must also be
# byte-identical sequentially and at any pool width.
NORMAN_WORKERS=8 NORMAN_FAULT_SEED=7 go test -race -count=1 -run 'E10|Recovery|Journal|Reconcile' ./internal/experiments/... ./internal/recovery/... ./internal/ctl/...
# Overload-governor determinism under race at the same non-default seed: the
# E11 table (admission, backpressure, shedding past the DDIO cliff) and the
# cross-subsystem chaos soak must be byte-identical sequentially and at any
# pool width.
NORMAN_WORKERS=8 NORMAN_FAULT_SEED=7 go test -race -count=1 -run 'E11|Overload|Watchdog|Watermark|Chaos' ./internal/experiments/... ./internal/overload/... ./internal/transport/... ./internal/mem/... .
# Tenant-isolation determinism under race at the same non-default seed: the
# E13 table (weighted scheduling, DDIO partitioning, per-tenant governor) and
# the adversarial-tenant chaos soak must be byte-identical sequentially and
# at any pool width.
NORMAN_WORKERS=8 NORMAN_FAULT_SEED=7 go test -race -count=1 -run 'E13|Tenant' ./internal/experiments/... ./internal/nic/... ./internal/cache/... ./internal/overload/... ./internal/ctl/... .
# Flow-cache determinism under race: the E14 table (hit rates, partition
# quotas, clock eviction, typed denials) and the cache's conservation
# ledger must be byte-identical sequentially and at any pool width.
NORMAN_WORKERS=8 NORMAN_FAULT_SEED=7 go test -race -count=1 -run 'E14|FlowCache' ./internal/experiments/... ./internal/nic/... ./internal/ctl/... .
# Hardware-fault / health-failover determinism under race at the same
# non-default seed: the E15 table (checksum detection, quarantine,
# slow-path failover, probation failback) and the hardware-fault layer of
# the chaos soak must be byte-identical sequentially and at any pool
# width.
NORMAN_WORKERS=8 NORMAN_FAULT_SEED=7 go test -race -count=1 -run 'E15|Health|Chaos' ./internal/experiments/... ./internal/health/... ./internal/faults/... ./internal/nic/... .
# Live-upgrade determinism under race at the same non-default seed: the
# E16 table (staged A/B cutover, pause buffering, canary rollback, warm
# handover), the generation/pause/outage accounting, the snapshot codec
# and journal compaction must be byte-identical sequentially and at any
# pool width.
NORMAN_WORKERS=8 NORMAN_FAULT_SEED=7 go test -race -count=1 -run 'E16|Upgrade|Snapshot|Compact|Generation|Pause|Outage' ./internal/experiments/... ./internal/upgrade/... ./internal/recovery/... ./internal/nic/... ./internal/ctl/... .
# Sharded-engine determinism under race: the E12 table and the barrier
# coordinator's merge order must be byte-identical at any shard count
# (DESIGN.md §8), with the lockstep worker goroutines under the detector.
NORMAN_WORKERS=8 go test -race -count=1 -run 'E12|Shard|Sharded|Flyweight|QueueGroup|Slab|Burst' ./internal/experiments/... ./internal/sim/... ./internal/mem/... ./internal/transport/... ./internal/nic/... ./internal/arch/...

# pcap round-trip smoke: boot a real daemon, capture through the control
# socket, and validate the exported file carries the classic little-endian
# pcap magic — the bytes tcpdump/Wireshark would check first.
tmp=$(mktemp -d)
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
go build -o "$tmp/normand" ./cmd/normand
go build -o "$tmp/ntcpdump" ./cmd/ntcpdump
"$tmp/normand" -socket "$tmp/ctl.sock" &
daemon_pid=$!
i=0
while [ ! -S "$tmp/ctl.sock" ]; do
	i=$((i + 1))
	[ "$i" -le 100 ] || { echo "normand never opened its socket" >&2; exit 1; }
	sleep 0.1
done
"$tmp/ntcpdump" -socket "$tmp/ctl.sock" -advance 10 -fetch -w "$tmp/out.pcap" udp >/dev/null
kill "$daemon_pid"
[ -s "$tmp/out.pcap" ]
head -c 4 "$tmp/out.pcap" | od -An -tx1 | tr -d ' \n' | grep -q '^d4c3b2a1$'

# Unreachable smoke: with no daemon on the socket, every tool must exit
# nonzero with the one-line diagnosis instead of a stack trace or a hang.
go build -o "$tmp/niptables" ./cmd/niptables
go build -o "$tmp/nnetstat" ./cmd/nnetstat
if "$tmp/niptables" -socket "$tmp/absent.sock" -L 2>"$tmp/unreach.err"; then
	echo "niptables against a dead socket must exit nonzero" >&2
	exit 1
fi
grep -q "normand unreachable at $tmp/absent.sock" "$tmp/unreach.err"

# Crash-recovery smoke: boot a journaled daemon, advance time, install a
# policy, SIGKILL it mid-flight, restart it on the same journal, and assert
# the reconciler replays the intent and reports a clean intended-vs-live
# diff. The clock is advanced *before* the rule lands so the journal holds
# a t>0 entry — the second kill cycle below then proves the restarted
# daemon persisted its epoch-boundary entry (without it, the third start
# would refuse the journal as time going backward).
"$tmp/normand" -socket "$tmp/rec.sock" -journal "$tmp/intent.journal" &
rec_pid=$!
i=0
while [ ! -S "$tmp/rec.sock" ]; do
	i=$((i + 1))
	[ "$i" -le 100 ] || { echo "journaled normand never opened its socket" >&2; exit 1; }
	sleep 0.1
done
"$tmp/ntcpdump" -socket "$tmp/rec.sock" -advance 5 udp >/dev/null
"$tmp/niptables" -socket "$tmp/rec.sock" -A OUTPUT -p udp -dport 9999 -j DROP
kill -9 "$rec_pid"
wait "$rec_pid" 2>/dev/null || true
rm -f "$tmp/rec.sock"
[ -s "$tmp/intent.journal" ]
"$tmp/normand" -socket "$tmp/rec.sock" -journal "$tmp/intent.journal" >"$tmp/rec.out" &
daemon_pid=$!
i=0
while [ ! -S "$tmp/rec.sock" ]; do
	i=$((i + 1))
	[ "$i" -le 100 ] || { echo "restarted normand never opened its socket" >&2; exit 1; }
	sleep 0.1
done
grep -q "replayed" "$tmp/rec.out"
"$tmp/nnetstat" -socket "$tmp/rec.sock" -recovery | tee "$tmp/rec.status"
grep -q "diff clean" "$tmp/rec.status"
grep -q "invariants ok" "$tmp/rec.status"
"$tmp/niptables" -socket "$tmp/rec.sock" -L | grep -q 9999

# Second kill cycle on the same journal: mutate at t>0 again, SIGKILL, and
# restart a third incarnation. This fails unless the second incarnation
# wrote its epoch entry (and every recovery-time append) through to the
# journal file.
"$tmp/ntcpdump" -socket "$tmp/rec.sock" -advance 5 udp >/dev/null
"$tmp/niptables" -socket "$tmp/rec.sock" -A OUTPUT -p udp -dport 8888 -j DROP
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
rm -f "$tmp/rec.sock"
"$tmp/normand" -socket "$tmp/rec.sock" -journal "$tmp/intent.journal" >"$tmp/rec2.out" &
daemon_pid=$!
i=0
while [ ! -S "$tmp/rec.sock" ]; do
	i=$((i + 1))
	[ "$i" -le 100 ] || { echo "twice-restarted normand never opened its socket" >&2; exit 1; }
	sleep 0.1
done
grep -q "replayed" "$tmp/rec2.out"
"$tmp/nnetstat" -socket "$tmp/rec.sock" -recovery | tee "$tmp/rec2.status"
grep -q "diff clean" "$tmp/rec2.status"
grep -q "invariants ok" "$tmp/rec2.status"
"$tmp/niptables" -socket "$tmp/rec.sock" -L >"$tmp/rec2.rules"
grep -q 9999 "$tmp/rec2.rules"
grep -q 8888 "$tmp/rec2.rules"

# Overload smoke: the live daemon runs the overload governor, so -pressure
# must print the watchdog health state and exit 0.
"$tmp/nnetstat" -socket "$tmp/rec.sock" -pressure | tee "$tmp/pressure.out"
grep -q "watchdog: ok" "$tmp/pressure.out"
grep -q "admission:" "$tmp/pressure.out"

# Tenant smoke: the live daemon runs weighted tenant isolation over the demo
# users, so -tenants must print one merged row per tenant and exit 0.
"$tmp/nnetstat" -socket "$tmp/rec.sock" -tenants | tee "$tmp/tenants.out"
grep -q "tenants: 2 under weighted isolation" "$tmp/tenants.out"
grep -q "tenant 1 (weight 3)" "$tmp/tenants.out"
grep -q "tenant 2 (weight 1)" "$tmp/tenants.out"

# Flow-cache smoke: the live daemon enables the NIC flow cache at boot, so
# -flows must print the cache header, the hit-rate line and one partition
# row per tenant, and exit 0.
"$tmp/nnetstat" -socket "$tmp/rec.sock" -flows | tee "$tmp/flows.out"
grep -q "flowcache: " "$tmp/flows.out"
grep -q "lookups: " "$tmp/flows.out"
grep -q "tenant 1: " "$tmp/flows.out"
grep -q "tenant 2: " "$tmp/flows.out"

# Health smoke: the live daemon starts the hardware health monitor at
# boot, so -health must print the sampler state, the aggregate event
# line and one row per hardware component, and exit 0.
"$tmp/nnetstat" -socket "$tmp/rec.sock" -health | tee "$tmp/health.out"
grep -q "health: sampling" "$tmp/health.out"
grep -q "events: " "$tmp/health.out"
grep -q "dma" "$tmp/health.out"
grep -q "flowcache" "$tmp/health.out"
grep -q "link" "$tmp/health.out"
grep -q "pipeline" "$tmp/health.out"

# Upgrade smoke: the live daemon boots with the live-upgrade manager
# enabled, so -upgrade must print the generation/phase header, the event
# and canary lines and the handover accounting, and exit 0.
"$tmp/nnetstat" -socket "$tmp/rec.sock" -upgrade | tee "$tmp/upgrade.out"
grep -q "upgrade: generation" "$tmp/upgrade.out"
grep -q "events: " "$tmp/upgrade.out"
grep -q "canary: " "$tmp/upgrade.out"
grep -q "handover: " "$tmp/upgrade.out"
kill "$daemon_pid"

# E12 shard-determinism smoke: the same sweep on 1 engine and on 8 lockstep
# shards must render a byte-identical table (-race so the barrier's worker
# goroutines run under the detector; wall-clock footer lines filtered).
go build -race -o "$tmp/kopibench" ./cmd/kopibench
"$tmp/kopibench" -e E12 -scale 0.002 -shards 1 | grep -v '^\(===\|---\)' >"$tmp/e12.shards1"
"$tmp/kopibench" -e E12 -scale 0.002 -shards 8 | grep -v '^\(===\|---\)' >"$tmp/e12.shards8"
diff "$tmp/e12.shards1" "$tmp/e12.shards8"

# E13 shard-determinism smoke: the isolation table is also an invariant of
# the execution layout — 1 engine vs 2 lockstep shards, byte-identical.
"$tmp/kopibench" -e E13 -scale 0.12 -shards 1 | grep -v '^\(===\|---\)' >"$tmp/e13.shards1"
"$tmp/kopibench" -e E13 -scale 0.12 -shards 2 | grep -v '^\(===\|---\)' >"$tmp/e13.shards2"
diff "$tmp/e13.shards1" "$tmp/e13.shards2"

# E14 shard-determinism smoke: the flow-cache table (clock hands, partition
# quotas, per-tenant counters) is likewise an invariant of the execution
# layout — 1 engine vs 2 lockstep shards, byte-identical.
"$tmp/kopibench" -e E14 -scale 0.12 -shards 1 | grep -v '^\(===\|---\)' >"$tmp/e14.shards1"
"$tmp/kopibench" -e E14 -scale 0.12 -shards 2 | grep -v '^\(===\|---\)' >"$tmp/e14.shards2"
diff "$tmp/e14.shards1" "$tmp/e14.shards2"

# E15 shard-determinism smoke: the hardware-fault table (fault schedule,
# checksum detection, quarantine/failback cycle) is an invariant of the
# execution layout too — 1 engine vs 2 lockstep shards at a pinned
# non-default fault seed, byte-identical.
NORMAN_FAULT_SEED=7 "$tmp/kopibench" -e E15 -scale 0.12 -shards 1 | grep -v '^\(===\|---\)' >"$tmp/e15.shards1"
NORMAN_FAULT_SEED=7 "$tmp/kopibench" -e E15 -scale 0.12 -shards 2 | grep -v '^\(===\|---\)' >"$tmp/e15.shards2"
diff "$tmp/e15.shards1" "$tmp/e15.shards2"

# E16 shard-determinism smoke: the live-upgrade table (staged cutover,
# pause buffering, canary verdicts, warm handover) is an invariant of the
# execution layout too — 1 engine vs 2 lockstep shards at a pinned
# non-default fault seed, byte-identical.
NORMAN_FAULT_SEED=7 "$tmp/kopibench" -e E16 -scale 0.12 -shards 1 | grep -v '^\(===\|---\)' >"$tmp/e16.shards1"
NORMAN_FAULT_SEED=7 "$tmp/kopibench" -e E16 -scale 0.12 -shards 2 | grep -v '^\(===\|---\)' >"$tmp/e16.shards2"
diff "$tmp/e16.shards1" "$tmp/e16.shards2"

# Sharded-daemon smoke: a daemon running its world on 4 engine shards must
# serve the engine.shards op with per-shard rows through nnetstat -shards.
"$tmp/normand" -socket "$tmp/sh.sock" -shards 4 &
daemon_pid=$!
i=0
while [ ! -S "$tmp/sh.sock" ]; do
	i=$((i + 1))
	[ "$i" -le 100 ] || { echo "sharded normand never opened its socket" >&2; exit 1; }
	sleep 0.1
done
"$tmp/ntcpdump" -socket "$tmp/sh.sock" -advance 5 udp >/dev/null
"$tmp/nnetstat" -socket "$tmp/sh.sock" -shards | tee "$tmp/shards.out"
grep -q "engine: 4 shards" "$tmp/shards.out"
grep -q "shard 3:" "$tmp/shards.out"
kill "$daemon_pid"
echo "check.sh: all gates passed"
