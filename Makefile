# Developer entry points. `make check` is the gate every PR must pass.

GO ?= go

.PHONY: check build test race bench bench-engine baselines docs

check:
	./scripts/check.sh

# Documentation gates alone (a fast subset of `make check`): every package
# must carry a godoc comment, and OBSERVABILITY.md's metric names must
# match a fully populated registry (the drift gate).
docs:
	@undoc=$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep -v '^$$' || true); \
	if [ -n "$$undoc" ]; then echo "packages lack a doc comment: $$undoc" >&2; exit 1; fi
	$(GO) test -count=1 -run 'TestObservabilityDocMatchesRegistry' .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	NORMAN_WORKERS=8 $(GO) test -race -count=1 ./internal/sim/... ./internal/experiments/...

# Engine hot-loop microbenchmarks (the allocs/op column must stay at 0).
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngine' -benchmem ./internal/sim/

# Full experiment benchmark sweep (regenerates every table).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Regenerate the BENCH_E*.json / BENCH_ENGINE.json perf baselines at full
# scale with the parallel harness.
baselines:
	$(GO) run ./cmd/kopibench -parallel -json -outdir .
