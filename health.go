package norman

import (
	"norman/internal/health"
	"norman/internal/telemetry"
)

// EnableHealth attaches the NIC hardware-health monitor: per-component
// error/latency signals (trap-fallback rate, flow-cache checksum failures,
// DMA stall time, link state) sampled with hysteresis; sustained degradation
// quarantines the failing component and fails its traffic over to the kernel
// interposition slow path, and a probation window restores it. Creating the
// monitor turns on flow-cache checksum verification. Idempotent; returns the
// monitor either way. Start it with Health().Start — like the overload
// watchdog, its sampler is paused across Run's drain.
func (s *System) EnableHealth(cfg health.Config) *health.Monitor {
	if s.hm == nil {
		s.hm = health.New(s.w.Eng, s.w.NIC, cfg)
		if s.w.Tracer != nil {
			s.hm.SetTracer(s.w.Tracer)
		}
		if s.reg != nil {
			s.hm.RegisterMetrics(s.reg, telemetry.Labels{"arch": s.a.Name()})
		}
	}
	return s.hm
}

// Health returns the health monitor, nil before EnableHealth.
func (s *System) Health() *health.Monitor { return s.hm }

// HealthComponentStatus is one NIC component's health row in a HealthStatus
// snapshot.
type HealthComponentStatus struct {
	Component   string `json:"component"`
	State       string `json:"state"`
	Signals     uint64 `json:"signals"`
	Quarantines uint64 `json:"quarantines"`
	Failovers   uint64 `json:"failovers"`
	Failbacks   uint64 `json:"failbacks"`
}

// HealthStatus is a point-in-time snapshot of the health subsystem, shaped
// for the ctl health.status op and nnetstat -health.
type HealthStatus struct {
	Enabled     bool                    `json:"enabled"`
	Watching    bool                    `json:"watching"`
	Samples     uint64                  `json:"samples"`
	Quarantines uint64                  `json:"quarantines"`
	Failovers   uint64                  `json:"failovers"`
	Failbacks   uint64                  `json:"failbacks"`
	Probes      uint64                  `json:"probes"`
	Components  []HealthComponentStatus `json:"components,omitempty"`
}

// HealthStatus snapshots the health monitor; Enabled is false before
// EnableHealth (graceful degradation, like FlowCacheStatus).
func (s *System) HealthStatus() HealthStatus {
	if s.hm == nil {
		return HealthStatus{}
	}
	st := HealthStatus{
		Enabled:     true,
		Watching:    s.hm.Running(),
		Samples:     s.hm.Samples,
		Quarantines: s.hm.Quarantines,
		Failovers:   s.hm.Failovers,
		Failbacks:   s.hm.Failbacks,
		Probes:      s.hm.Probes,
	}
	for _, c := range s.hm.Status() {
		st.Components = append(st.Components, HealthComponentStatus{
			Component:   string(c.Component),
			State:       c.State.String(),
			Signals:     c.Signals,
			Quarantines: c.Quarantines,
			Failovers:   c.Failovers,
			Failbacks:   c.Failbacks,
		})
	}
	return st
}
