// Package norman is the public API of the Norman reproduction: a simulated
// operating system implementing Kernel On-Path Interposition (KOPI) as
// proposed in "We Need Kernel Interposition over the Network Dataplane"
// (HotOS '21), together with the four competing dataplane architectures the
// paper argues against.
//
// A System is one simulated host: users, processes, a kernel control plane,
// a 100 Gbps on-path SmartNIC, and a wire whose far end you script. All time
// is virtual (picosecond-resolution discrete-event simulation), so results
// are deterministic and independent of the Go runtime.
//
// Quick start:
//
//	sys := norman.New(norman.KOPI)
//	sys.UseEchoPeer()
//	alice := sys.AddUser(1000, "alice")
//	app := sys.Spawn(alice, "myapp")
//	conn, _ := sys.Dial(app, 40000, 7)
//	conn.OnReceive(func(p norman.Delivery) { ... })
//	conn.Send(512)
//	sys.Run()
//
// Administrative interposition — the paper's subject — is exposed through
// the same verbs an admin would use: IPTables (owner-aware filtering), TC
// (qdiscs/shaping), Tcpdump (attributed capture), Netstat and ARP views.
// Which of these work, and how well, depends on the architecture you chose;
// that difference is the reproduction's point.
package norman

import (
	"fmt"

	"norman/internal/arch"
	"norman/internal/health"
	"norman/internal/host"
	"norman/internal/kernel"
	"norman/internal/overload"
	"norman/internal/packet"
	"norman/internal/recovery"
	"norman/internal/sim"
	"norman/internal/telemetry"
	"norman/internal/timing"
	"norman/internal/upgrade"
)

// Architecture selects the dataplane design a System simulates.
type Architecture string

// The five architectures of the comparison (§1 of the paper).
const (
	KernelStack Architecture = "kernelstack" // traditional in-kernel dataplane
	Bypass      Architecture = "bypass"      // DPDK/Arrakis-style raw kernel bypass
	Sidecar     Architecture = "sidecar"     // IX/Snap-style dedicated dataplane core
	Hypervisor  Architecture = "hypervisor"  // AccelNet-style NIC switch, no process view
	KOPI        Architecture = "kopi"        // the paper's proposal: Norman
)

// Architectures lists all five in canonical comparison order.
func Architectures() []Architecture {
	out := make([]Architecture, 0, 5)
	for _, n := range arch.Names() {
		out = append(out, Architecture(n))
	}
	return out
}

// Option customizes System construction.
type Option func(*config)

type config struct {
	world arch.WorldConfig
}

// WithModel overrides the cost model.
func WithModel(m timing.Model) Option {
	return func(c *config) { c.world.Model = m }
}

// WithRingSize sets per-connection descriptor ring depth (power of two).
func WithRingSize(n int) Option {
	return func(c *config) { c.world.RingSize = n }
}

// WithNICSRAM caps the on-NIC memory budget in bytes.
func WithNICSRAM(n int) Option {
	return func(c *config) { c.world.SRAMBudget = n }
}

// WithoutCacheModel disables LLC/DDIO modeling (the "ideal memory" ablation).
func WithoutCacheModel() Option {
	return func(c *config) { c.world.NoLLC = true }
}

// WithShards runs the world's engine as n lockstep shards under a barrier
// coordinator (DESIGN.md §8). n ≤ 1 keeps the classic single engine.
func WithShards(n int) Option {
	return func(c *config) { c.world.Shards = n }
}

// User is a system user handle.
type User struct {
	UID  uint32
	Name string
}

// Process is a running process handle.
type Process struct {
	p *kernel.Process
}

// PID returns the process id.
func (p *Process) PID() uint32 { return p.p.PID }

// UID returns the owning user id.
func (p *Process) UID() uint32 { return p.p.UID }

// Command returns the command name.
func (p *Process) Command() string { return p.p.Command }

// Delivery is one packet handed to an application.
type Delivery struct {
	Payload int      // payload bytes
	From    string   // source address "ip:port"
	At      Duration // virtual time of delivery
}

// Duration re-exports virtual time spans for API users.
type Duration = sim.Duration

// Common duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// System is one simulated host on one architecture.
type System struct {
	a     arch.Arch
	w     *arch.World
	mux   *host.Mux
	rules []installedRule
	reg   *telemetry.Registry
	rec   *recovery.Manager
	gov   *overload.Governor
	hm    *health.Monitor
	up    *upgrade.Manager
}

// installedRule remembers admin rule state for IPTablesList.
type installedRule struct {
	hook string
	rule Rule
}

// New builds a System on the given architecture.
func New(archName Architecture, opts ...Option) *System {
	cfg := &config{}
	for _, o := range opts {
		o(cfg)
	}
	a := arch.New(string(archName), cfg.world)
	if a == nil {
		panic(fmt.Sprintf("norman: unknown architecture %q", archName))
	}
	s := &System{a: a, w: a.World()}
	s.mux = host.NewMux(a)
	return s
}

// ArchitectureName returns the architecture the system runs.
func (s *System) ArchitectureName() Architecture { return Architecture(s.a.Name()) }

// Capabilities reports what this architecture's interposition point can do.
func (s *System) Capabilities() arch.Caps { return s.a.Caps() }

// AddUser registers a user.
func (s *System) AddUser(uid uint32, name string) *User {
	s.w.Kern.AddUser(uid, name)
	return &User{UID: uid, Name: name}
}

// Spawn starts a process owned by user running command.
func (s *System) Spawn(u *User, command string) *Process {
	return &Process{p: s.w.Kern.Spawn(u.UID, command)}
}

// Now returns the current virtual time since start.
func (s *System) Now() Duration { return sim.Duration(s.w.Eng.Now()) }

// Run executes queued events until the simulation drains and returns the
// final virtual time. A running overload watchdog is paused for the drain
// (its self-rescheduling timer would otherwise keep the engine busy forever)
// and resumed afterwards; use RunFor for bounded stepping with the watchdog
// live.
func (s *System) Run() Duration {
	resume := s.gov != nil && s.gov.Running()
	if resume {
		s.gov.Stop()
	}
	resumeHM := s.hm != nil && s.hm.Running()
	if resumeHM {
		s.hm.Stop()
	}
	resumeUp := s.up != nil && s.up.Running()
	if resumeUp {
		s.up.Stop()
	}
	var t Duration
	if s.w.Coord != nil {
		t = sim.Duration(s.w.Coord.Run())
	} else {
		t = sim.Duration(s.w.Eng.Run())
	}
	if resume {
		s.gov.Start(0)
	}
	if resumeHM {
		s.hm.Start(0)
	}
	if resumeUp {
		s.up.Start(0)
	}
	return t
}

// RunFor executes events up to d of virtual time.
func (s *System) RunFor(d Duration) Duration {
	if s.w.Coord != nil {
		return sim.Duration(s.w.Coord.RunUntil(s.w.Coord.Now().Add(d)))
	}
	return sim.Duration(s.w.Eng.RunUntil(s.w.Eng.Now().Add(d)))
}

// At schedules fn at an absolute virtual time.
func (s *System) At(t Duration, fn func()) { s.w.Eng.At(sim.Time(t), fn) }

// After schedules fn after a virtual delay.
func (s *System) After(d Duration, fn func()) { s.w.Eng.After(d, fn) }

// UseEchoPeer installs a wire peer that echoes UDP datagrams back.
func (s *System) UseEchoPeer() {
	s.w.Peer = host.EchoPeer(s.a)
}

// UseSinkPeer installs a counting sink as the wire peer and returns it.
func (s *System) UseSinkPeer() *host.SinkPeer {
	sink := host.NewSinkPeer()
	s.w.Peer = sink.Recv
	return sink
}

// Ping sends a kernel-originated ICMP echo to dst (dotted quad) and calls
// done with the round-trip time. On architectures whose kernel cannot see
// the reply (bypass, hypervisor) it returns an error immediately — the
// paper's manageability gap includes ping.
func (s *System) Ping(dst string, done func(rtt Duration, ok bool)) error {
	var a, b, c, d byte
	if _, err := fmt.Sscanf(dst, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return fmt.Errorf("norman: bad address %q", dst)
	}
	return s.a.Ping(packet.MakeIP(a, b, c, d), 56, func(rtt sim.Duration, ok bool) {
		if done != nil {
			done(rtt, ok)
		}
	})
}

// InjectInbound delivers a UDP datagram from the peer toward the local
// (srcPort, dstPort) flow previously opened with Dial.
func (s *System) InjectInbound(c *Conn, payload int) {
	s.a.DeliverWire(s.w.UDPFrom(c.flow, payload))
}

// EnableTelemetry attaches the unified observability layer: a labeled
// metrics registry covering every layer of the world (host, sim, mem, nic,
// trace) and a packet-lifecycle tracer whose span depth comes from
// NORMAN_TRACE_DEPTH. Idempotent; returns the registry either way.
func (s *System) EnableTelemetry() *telemetry.Registry {
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
		s.w.EnableTracing(0)
		s.w.RegisterMetrics(s.reg, telemetry.Labels{"arch": s.a.Name()})
		if s.rec != nil {
			s.rec.SetTracer(s.w.Tracer)
			s.rec.RegisterMetrics(s.reg, telemetry.Labels{"arch": s.a.Name()})
		}
		if s.gov != nil {
			s.gov.SetTracer(s.w.Tracer)
			s.gov.RegisterMetrics(s.reg, telemetry.Labels{"arch": s.a.Name()})
		}
		if s.hm != nil {
			s.hm.SetTracer(s.w.Tracer)
			s.hm.RegisterMetrics(s.reg, telemetry.Labels{"arch": s.a.Name()})
		}
		if s.up != nil {
			s.up.SetTracer(s.w.Tracer)
			s.up.RegisterMetrics(s.reg, telemetry.Labels{"arch": s.a.Name()})
		}
	}
	return s.reg
}

// Telemetry returns the metrics registry, nil before EnableTelemetry.
func (s *System) Telemetry() *telemetry.Registry { return s.reg }

// Tracer returns the packet-lifecycle tracer, nil before EnableTelemetry.
func (s *System) Tracer() *telemetry.Tracer { return s.w.Tracer }

// ShardStat is one engine shard's counters in a ShardStats snapshot.
type ShardStat struct {
	Shard    int
	Events   uint64
	MailSent uint64
	MailRecv uint64
	Pending  int
	Stalls   uint64
}

// ShardStats is the engine shard coordinator's snapshot. An unsharded
// system reports Sharded=false with one synthetic row for its single
// engine, so callers (the ctl server, nnetstat) never need two code paths.
type ShardStats struct {
	Sharded   bool
	Shards    int
	Buckets   int
	Epoch     Duration
	Epochs    uint64
	Delivered uint64
	Rows      []ShardStat
}

// ShardStats snapshots the shard coordinator's counters.
func (s *System) ShardStats() ShardStats {
	c := s.w.Coord
	if c == nil {
		return ShardStats{
			Shards: 1,
			Rows:   []ShardStat{{Shard: 0, Events: s.w.Eng.Fired()}},
		}
	}
	st := ShardStats{
		Sharded:   true,
		Shards:    c.Shards(),
		Buckets:   c.Buckets(),
		Epoch:     c.Epoch(),
		Epochs:    c.Epochs(),
		Delivered: c.Delivered(),
		Rows:      make([]ShardStat, c.Shards()),
	}
	for i := range st.Rows {
		st.Rows[i] = ShardStat{
			Shard:    i,
			Events:   c.ShardFired(i),
			MailSent: c.MailSent(i),
			MailRecv: c.MailRecv(i),
			Pending:  c.MailPending(i),
			Stalls:   c.Stalls(i),
		}
	}
	return st
}

// World exposes the underlying simulation world for advanced use (bench
// harnesses, custom peers). Most callers never need it.
func (s *System) World() *arch.World { return s.w }

// Arch exposes the underlying architecture implementation.
func (s *System) Arch() arch.Arch { return s.a }

// kernFlow builds the canonical local->peer UDP flow key.
func (s *System) kernFlow(localPort, remotePort uint16) packet.FlowKey {
	return s.w.Flow(localPort, remotePort)
}
