// Command narp shows the kernel ARP view of a running normand: the cache,
// and — the §2 debugging scenario's payoff — per-process accounting of who
// has been sending ARP requests. Also doubles as the clock tool: -advance
// runs virtual time forward, and -status prints dataplane counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"norman/internal/ctl"
)

func main() {
	socket := flag.String("socket", ctl.DefaultSocket, "normand control socket")
	advance := flag.Int("advance", 0, "advance virtual time by this many ms first")
	status := flag.Bool("status", false, "print daemon status instead of the ARP view")
	flag.Parse()

	c, err := ctl.Dial(*socket)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	if *advance > 0 {
		if err := c.Call(ctl.OpAdvance, ctl.AdvanceArgs{Millis: *advance}, nil); err != nil {
			fatal(err)
		}
	}
	if *status {
		var st ctl.StatusData
		if err := c.Call(ctl.OpStatus, nil, &st); err != nil {
			fatal(err)
		}
		fmt.Printf("architecture : %s\n", st.Architecture)
		fmt.Printf("virtual time : %s\n", st.VirtualTime)
		fmt.Printf("tx frames    : %d\n", st.TxFrames)
		fmt.Printf("rx frames    : %d (drops %d)\n", st.RxFrames, st.RxDrops)
		fmt.Printf("nic sram     : %d / %d bytes\n", st.SRAMUsed, st.SRAMBudget)
		fmt.Printf("nic conns    : %d\n", st.Conns)
		return
	}

	var data ctl.ARPData
	if err := c.Call(ctl.OpARP, nil, &data); err != nil {
		fatal(err)
	}
	fmt.Println("ARP cache:")
	if len(data.Entries) == 0 {
		fmt.Println("  (empty — this architecture's kernel never sees dataplane ARP)")
	}
	for _, e := range data.Entries {
		fmt.Printf("  %-16s %-18s learned %s\n", e.IP, e.MAC, e.Learned)
	}
	fmt.Println("outbound ARP requests by pid:")
	if len(data.RequestsByPID) == 0 {
		fmt.Println("  (none observed)")
	}
	pids := make([]uint32, 0, len(data.RequestsByPID))
	for pid := range data.RequestsByPID {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool {
		return data.RequestsByPID[pids[i]] > data.RequestsByPID[pids[j]]
	})
	for _, pid := range pids {
		who := fmt.Sprintf("pid %d", pid)
		if pid == 0 {
			who = "unattributed"
		}
		fmt.Printf("  %-14s %d requests\n", who, data.RequestsByPID[pid])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "narp: %v\n", err)
	os.Exit(1)
}
