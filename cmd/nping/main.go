// Command nping pings from a running normand's kernel — the most basic
// liveness tool an administrator has, and one more §2 casualty: it only
// works where the kernel can still originate and receive dataplane traffic
// (kernelstack, sidecar, KOPI; try `normand -arch bypass` and watch it
// fail).
//
//	nping 10.0.0.2
//	nping -c 5 10.0.0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"norman/internal/ctl"
)

func main() {
	socket := flag.String("socket", ctl.DefaultSocket, "normand control socket")
	count := flag.Int("c", 3, "number of echoes")
	flag.Parse()

	dst := "10.0.0.2"
	if flag.NArg() > 0 {
		dst = flag.Arg(0)
	}

	c, err := ctl.Dial(*socket)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	var data ctl.PingData
	if err := c.Call(ctl.OpPing, ctl.PingArgs{Dst: dst, Count: *count}, &data); err != nil {
		fatal(err)
	}
	for i, rtt := range data.RTTs {
		fmt.Printf("%d bytes from %s: icmp_seq=%d time=%s (virtual)\n", 56, dst, i+1, rtt)
	}
	loss := 100 * (data.Sent - data.Received) / data.Sent
	fmt.Printf("--- %s ping statistics ---\n", dst)
	fmt.Printf("%d transmitted, %d received, %d%% packet loss\n", data.Sent, data.Received, loss)
	if data.Received == 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nping: %v\n", err)
	os.Exit(1)
}
