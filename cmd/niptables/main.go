// Command niptables manages firewall rules on a running normand, in
// (abridged) iptables syntax — including the owner matches that make the
// paper's port-partitioning scenario enforceable on KOPI:
//
//	niptables -A OUTPUT -p udp --dport 5432 -m-owner-uid 1001 -m-owner-cmd postgres -j ACCEPT
//	niptables -A OUTPUT -p udp --dport 5432 -j DROP
//	niptables -L
//	niptables -F
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"norman/internal/ctl"
)

func main() {
	socket := flag.String("socket", ctl.DefaultSocket, "normand control socket")
	appendHook := flag.String("A", "", "append a rule to this chain (INPUT or OUTPUT)")
	list := flag.Bool("L", false, "list rules")
	flush := flag.Bool("F", false, "flush all rules")
	proto := flag.String("p", "", "protocol (udp, tcp)")
	src := flag.String("s", "", "source CIDR")
	dst := flag.String("d", "", "destination CIDR")
	sport := flag.Uint("sport", 0, "source port")
	dport := flag.Uint("dport", 0, "destination port")
	uidOwner := flag.Int("m-owner-uid", -1, "match owning uid (needs a process view)")
	cmdOwner := flag.String("m-owner-cmd", "", "match owning command (needs a process view)")
	action := flag.String("j", "ACCEPT", "verdict: ACCEPT, DROP, COUNT, LOG")
	flag.Parse()

	c, err := ctl.Dial(*socket)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch {
	case *list:
		var rules []string
		if err := c.Call(ctl.OpIPTablesList, nil, &rules); err != nil {
			fatal(err)
		}
		if len(rules) == 0 {
			fmt.Println("(no rules)")
		}
		for _, r := range rules {
			fmt.Println(r)
		}
	case *flush:
		if err := c.Call(ctl.OpIPTablesFlush, nil, nil); err != nil {
			fatal(err)
		}
		fmt.Println("flushed")
	case *appendHook != "":
		args := ctl.RuleArgs{
			Hook: *appendHook, Proto: *proto, SrcNet: *src, DstNet: *dst,
			SrcPort: uint16(*sport), DstPort: uint16(*dport),
			OwnerCmd: *cmdOwner, Action: actionWord(*action),
		}
		if *uidOwner >= 0 {
			u := uint32(*uidOwner)
			args.OwnerUID = &u
		}
		if err := c.Call(ctl.OpIPTablesAdd, args, nil); err != nil {
			fatal(err)
		}
		fmt.Println("rule installed (compiled to the NIC overlay where applicable)")
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func actionWord(s string) string {
	switch s {
	case "ACCEPT":
		return "accept"
	case "DROP":
		return "drop"
	case "COUNT":
		return "count"
	case "LOG":
		return "log"
	default:
		return s
	}
}

func fatal(err error) {
	var u *ctl.Unreachable
	if errors.As(err, &u) {
		fmt.Fprintf(os.Stderr, "niptables: normand unreachable at %s\n", u.Addr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "niptables: %v\n", err)
	os.Exit(1)
}
