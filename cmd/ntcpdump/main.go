// Command ntcpdump captures traffic on a running normand with a
// tcpdump-style filter expression — including the Norman process-view
// extensions (uid/pid/cmd) where the architecture supports them — and
// optionally writes a standard pcap file.
//
//	ntcpdump arp                         # start capturing ARP
//	ntcpdump -advance 50 -fetch          # run 50ms of virtual time, print
//	ntcpdump -fetch -w out.pcap          # also write a pcap
//	ntcpdump -trace 0                    # print the latest packet's lifecycle
//	ntcpdump -trace 17                   # print packet 17's full journey
package main

import (
	"encoding/base64"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"norman/internal/ctl"
)

func main() {
	socket := flag.String("socket", ctl.DefaultSocket, "normand control socket")
	fetch := flag.Bool("fetch", false, "fetch and print captured records")
	advance := flag.Int("advance", 0, "advance virtual time by this many ms first")
	pcapOut := flag.String("w", "", "write captured packets to this pcap file")
	traceID := flag.Uint64("trace", 0, "print one packet's lifecycle journey by trace id (0 = latest); use -dotrace to request id 0 explicitly")
	doTrace := flag.Bool("dotrace", false, "print the most recent packet's lifecycle journey")
	flag.Parse()

	c, err := ctl.Dial(*socket)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	if *traceID != 0 || *doTrace {
		if *advance > 0 {
			if err := c.Call(ctl.OpAdvance, ctl.AdvanceArgs{Millis: *advance}, nil); err != nil {
				fatal(err)
			}
		}
		var data ctl.TraceData
		if err := c.Call(ctl.OpTrace, ctl.TraceArgs{ID: *traceID}, &data); err != nil {
			fatal(err)
		}
		fmt.Print(data.Rendered)
		if len(data.Available) > 0 {
			fmt.Printf("(%d traced packets retained: ids %d..%d)\n",
				len(data.Available), data.Available[0], data.Available[len(data.Available)-1])
		}
		return
	}

	if expr := strings.Join(flag.Args(), " "); expr != "" || (!*fetch && *pcapOut == "") {
		if err := c.Call(ctl.OpDumpStart, ctl.DumpArgs{Expr: expr}, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("capturing: %q\n", expr)
	}
	if *advance > 0 {
		if err := c.Call(ctl.OpAdvance, ctl.AdvanceArgs{Millis: *advance}, nil); err != nil {
			fatal(err)
		}
	}
	if *fetch {
		var recs []ctl.DumpRecord
		if err := c.Call(ctl.OpDumpFetch, nil, &recs); err != nil {
			fatal(err)
		}
		for _, r := range recs {
			fmt.Printf("%-12s %-52s [%s]\n", r.At, r.Summary, r.Attribution)
		}
		fmt.Printf("%d packets captured\n", len(recs))
	}
	if *pcapOut != "" {
		var blob ctl.PcapData
		if err := c.Call(ctl.OpDumpPcap, nil, &blob); err != nil {
			fatal(err)
		}
		raw, err := base64.StdEncoding.DecodeString(blob.Base64)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*pcapOut, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d packets to %s\n", blob.Count, *pcapOut)
	}
}

func fatal(err error) {
	var u *ctl.Unreachable
	if errors.As(err, &u) {
		fmt.Fprintf(os.Stderr, "ntcpdump: normand unreachable at %s\n", u.Addr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ntcpdump: %v\n", err)
	os.Exit(1)
}
