// Command nnetstat lists connections on a running normand with full
// process attribution — the kernel-table join (flow ↔ pid/uid/command) that
// off-host interposition layers cannot produce. With -metrics it instead
// dumps the daemon's unified telemetry registry (Prometheus text by default,
// JSON with -json), covering every layer from host syscalls to the NIC.
package main

import (
	"flag"
	"fmt"
	"os"

	"norman/internal/ctl"
)

func main() {
	socket := flag.String("socket", ctl.DefaultSocket, "normand control socket")
	metrics := flag.Bool("metrics", false, "dump the daemon's telemetry registry instead of connections")
	jsonOut := flag.Bool("json", false, "with -metrics: render JSON instead of Prometheus text")
	flag.Parse()

	c, err := ctl.Dial(*socket)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	if *metrics {
		format := "prometheus"
		if *jsonOut {
			format = "json"
		}
		var data ctl.TelemetryData
		if err := c.Call(ctl.OpTelemetry, ctl.TelemetryArgs{Format: format}, &data); err != nil {
			fatal(err)
		}
		fmt.Print(data.Body)
		fmt.Fprintf(os.Stderr, "nnetstat: %d metrics across layers %v\n", data.Metrics, data.Layers)
		return
	}

	var rows []ctl.NetstatData
	if err := c.Call(ctl.OpNetstat, nil, &rows); err != nil {
		fatal(err)
	}
	fmt.Printf("%-5s %-38s %-6s %-6s %-14s %s\n", "conn", "flow", "pid", "uid", "command", "opened")
	for _, r := range rows {
		fmt.Printf("%-5d %-38s %-6d %-6d %-14s %s\n", r.ConnID, r.Flow, r.PID, r.UID, r.Command, r.Opened)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nnetstat: %v\n", err)
	os.Exit(1)
}
