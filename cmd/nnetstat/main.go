// Command nnetstat lists connections on a running normand with full
// process attribution — the kernel-table join (flow ↔ pid/uid/command) that
// off-host interposition layers cannot produce. With -metrics it instead
// dumps the daemon's unified telemetry registry (Prometheus text by default,
// JSON with -json), covering every layer from host syscalls to the NIC.
// With -recovery it reports the crash-recovery subsystem: journal size,
// control-plane up/down state, and the last reconciliation (diff clean or
// not, invariants, repairs). With -pressure it reports the overload
// governor: watchdog health state, admission budgets and rejections, and
// shed/backpressure accounting. With -shards it reports the engine shard
// coordinator: per-shard event counts, mailbox traffic and depths, and
// barrier epoch/stall accounting. With -tenants it reports the multi-tenant
// isolation machinery: per-tenant scheduler grants, scheduler queue waits,
// DDIO partition hits and misses, and governor budgets and health. With
// -flows it reports the NIC's exact-match flow cache: occupancy, hit/miss
// and install/evict/invalidate accounting, and the per-tenant partition
// rows. With -health it reports the NIC hardware-health monitor: aggregate
// quarantine/failover/failback events and the per-component state rows. With
// -upgrade it reports the live-upgrade subsystem: lifecycle phase, pipeline
// generation, cutover/commit/rollback counts, canary accounting, and the
// pause-buffer and warm-transfer numbers of the last flip.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"norman/internal/ctl"
)

func main() {
	socket := flag.String("socket", ctl.DefaultSocket, "normand control socket")
	metrics := flag.Bool("metrics", false, "dump the daemon's telemetry registry instead of connections")
	jsonOut := flag.Bool("json", false, "with -metrics: render JSON instead of Prometheus text")
	recoveryFlag := flag.Bool("recovery", false, "show the daemon's crash-recovery status (journal, last reconciliation)")
	pressure := flag.Bool("pressure", false, "show the daemon's overload-governor status (watchdog state, admission, shedding)")
	shardsFlag := flag.Bool("shards", false, "show the daemon's engine shard coordinator (per-shard events, mailboxes, barrier stalls)")
	tenantsFlag := flag.Bool("tenants", false, "show the daemon's per-tenant isolation status (scheduler grants, DDIO partition, budgets)")
	flowsFlag := flag.Bool("flows", false, "show the NIC flow-cache status (occupancy, hit/miss, per-tenant partitions)")
	healthFlag := flag.Bool("health", false, "show the NIC hardware-health monitor (component states, quarantines, failovers)")
	upgradeFlag := flag.Bool("upgrade", false, "show the live-upgrade subsystem (phase, generation, canary, rollbacks)")
	flag.Parse()

	c, err := ctl.Dial(*socket)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	if *pressure {
		var data ctl.OverloadData
		if err := c.Call(ctl.OpOverload, nil, &data); err != nil {
			fatal(err)
		}
		if !data.Enabled {
			fmt.Println("watchdog: overload control not enabled on this daemon")
			return
		}
		sampling := "stopped"
		if data.Watching {
			sampling = "sampling"
		}
		fmt.Printf("watchdog: %s (%s, %d transitions)\n", data.State, sampling, data.Transitions)
		fmt.Printf("admission: %d admitted, rejected %d ddio / %d tenant / %d pressure\n",
			data.Admitted, data.RejectedDDIO, data.RejectedTenant, data.RejectedLoad)
		budget := "unlimited"
		if data.RingBudget > 0 {
			budget = fmt.Sprintf("%d", data.RingBudget)
		}
		fmt.Printf("ring budget: %d / %s bytes (occupancy %.2f, fifo %.2f)\n",
			data.RingBytes, budget, data.Occupancy, data.FifoFrac)
		fmt.Printf("degradation: %d packets shed, %d backpressure signals\n",
			data.ShedPackets, data.Signals)
		return
	}

	if *flowsFlag {
		var data ctl.FlowCacheData
		if err := c.Call(ctl.OpFlowCache, nil, &data); err != nil {
			fatal(err)
		}
		if !data.Enabled {
			fmt.Println("flowcache: not enabled on this daemon")
			return
		}
		part := "unpartitioned"
		if data.Partitioned {
			part = fmt.Sprintf("%d tenant partitions", len(data.Tenants))
		}
		total := data.Hits + data.Misses
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(data.Hits) / float64(total)
		}
		fmt.Printf("flowcache: %d / %d entries, %s\n", data.Entries, data.Capacity, part)
		fmt.Printf("lookups: %d hits / %d misses (%.1f%% hit)\n", data.Hits, data.Misses, pct)
		fmt.Printf("churn: %d installs, %d evictions, %d invalidations, %d denied\n",
			data.Installs, data.Evictions, data.Invalidations, data.Denied)
		for _, r := range data.Tenants {
			fmt.Printf("  tenant %d: %d / %d entries, %d hits, %d installs, %d evictions, %d denied\n",
				r.Tenant, r.Used, r.Quota, r.Hits, r.Installs, r.Evicts, r.Denied)
		}
		return
	}

	if *healthFlag {
		var data ctl.HealthData
		if err := c.Call(ctl.OpHealth, nil, &data); err != nil {
			fatal(err)
		}
		if !data.Enabled {
			fmt.Println("health: monitor not enabled on this daemon")
			return
		}
		sampling := "stopped"
		if data.Watching {
			sampling = "sampling"
		}
		fmt.Printf("health: %s, %d samples\n", sampling, data.Samples)
		fmt.Printf("events: %d quarantines, %d failovers, %d probes, %d failbacks\n",
			data.Quarantines, data.Failovers, data.Probes, data.Failbacks)
		for _, r := range data.Components {
			fmt.Printf("  %-10s %-12s %d signals, %d quarantines, %d failovers, %d failbacks\n",
				r.Component, r.State, r.Signals, r.Quarantines, r.Failovers, r.Failbacks)
		}
		return
	}

	if *upgradeFlag {
		var data ctl.UpgradeData
		if err := c.Call(ctl.OpUpgradeStatus, nil, &data); err != nil {
			fatal(err)
		}
		if !data.Enabled {
			fmt.Println("upgrade: live-upgrade subsystem not enabled on this daemon")
			return
		}
		watching := "idle"
		if data.Watching {
			watching = "canary watching"
		}
		fmt.Printf("upgrade: generation %d, phase %s (%s)\n", data.Generation, data.Phase, watching)
		fmt.Printf("events: %d upgrades, %d commits, %d rollbacks, %d adoptions\n",
			data.Upgrades, data.Commits, data.Rollbacks, data.Adoptions)
		fmt.Printf("canary: %d samples, %d breaches\n", data.CanarySamples, data.CanaryBreaches)
		fmt.Printf("handover: %d frames pause-buffered, %d pause drops, %d cache entries warm-transferred\n",
			data.PauseBuffered, data.PauseDrops, data.WarmEntries)
		if data.LastRollback != "" {
			fmt.Printf("last rollback: %s\n", data.LastRollback)
		}
		return
	}

	if *tenantsFlag {
		var data ctl.TenantData
		if err := c.Call(ctl.OpTenants, nil, &data); err != nil {
			fatal(err)
		}
		if !data.Enabled {
			fmt.Println("tenants: isolation not enabled on this daemon")
			return
		}
		fmt.Printf("tenants: %d under weighted isolation\n", len(data.Tenants))
		for _, r := range data.Tenants {
			fmt.Printf("  tenant %d (weight %d): %s, %d conns, pipe %d / dma %d grants, %d fifo drops\n",
				r.Tenant, r.Weight, r.State, r.Conns, r.PipeGrants, r.DMAGrants, r.FifoDrops)
			fmt.Printf("    waits: pipe %dns, dma %dns; ddio: %d ways, %d hits / %d misses; ring %d / %d bytes, %d transitions\n",
				r.PipeWaitNs, r.DMAWaitNs, r.DDIOWays, r.DDIOHits, r.DDIOMisses, r.RingBytes, r.RingBudget, r.Transitions)
		}
		return
	}

	if *shardsFlag {
		var data ctl.ShardsData
		if err := c.Call(ctl.OpShards, nil, &data); err != nil {
			fatal(err)
		}
		if !data.Sharded {
			fmt.Println("engine: unsharded (1 engine)")
		} else {
			fmt.Printf("engine: %d shards over %d buckets, epoch %s\n",
				data.Shards, data.Buckets, data.Epoch)
			fmt.Printf("barrier: %d epochs, %d mailbox events delivered\n",
				data.Epochs, data.Delivered)
		}
		for _, r := range data.Rows {
			fmt.Printf("  shard %d: %d events, mail %d sent / %d recv / %d pending, %d stalls\n",
				r.Shard, r.Events, r.MailSent, r.MailRecv, r.Pending, r.Stalls)
		}
		return
	}

	if *recoveryFlag {
		var data ctl.RecoveryData
		if err := c.Call(ctl.OpRecovery, nil, &data); err != nil {
			fatal(err)
		}
		state := "up"
		if data.Down {
			state = "DOWN"
		}
		fmt.Printf("control plane: %s\n", state)
		fmt.Printf("journal: %d entries, %d crashes, %d restarts, %d mutations rejected while down\n",
			data.JournalEntries, data.Crashes, data.Restarts, data.RejectedWhileDown)
		if !data.HasReport {
			fmt.Println("reconciliation: never run")
			return
		}
		diff := "diff clean"
		if !data.Clean {
			diff = fmt.Sprintf("diff NOT clean (%d divergences)", len(data.Divergences))
		}
		inv := "invariants ok"
		if !data.InvariantsOK {
			inv = "invariants FAILED"
		}
		fmt.Printf("reconciliation: %s, %s, %d entries replayed, %d rules, %d conns, %d stale, recovery took %s\n",
			diff, inv, data.Replayed, data.Rules, data.Conns, data.Stale, data.RecoveryTime)
		for _, d := range data.Divergences {
			fmt.Printf("  divergence: %s\n", d)
		}
		for _, a := range data.Actions {
			fmt.Printf("  repair: %s\n", a)
		}
		return
	}

	if *metrics {
		format := "prometheus"
		if *jsonOut {
			format = "json"
		}
		var data ctl.TelemetryData
		if err := c.Call(ctl.OpTelemetry, ctl.TelemetryArgs{Format: format}, &data); err != nil {
			fatal(err)
		}
		fmt.Print(data.Body)
		fmt.Fprintf(os.Stderr, "nnetstat: %d metrics across layers %v\n", data.Metrics, data.Layers)
		return
	}

	var rows []ctl.NetstatData
	if err := c.Call(ctl.OpNetstat, nil, &rows); err != nil {
		fatal(err)
	}
	fmt.Printf("%-5s %-38s %-6s %-6s %-14s %s\n", "conn", "flow", "pid", "uid", "command", "opened")
	for _, r := range rows {
		fmt.Printf("%-5d %-38s %-6d %-6d %-14s %s\n", r.ConnID, r.Flow, r.PID, r.UID, r.Command, r.Opened)
	}
}

func fatal(err error) {
	var u *ctl.Unreachable
	if errors.As(err, &u) {
		fmt.Fprintf(os.Stderr, "nnetstat: normand unreachable at %s\n", u.Addr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "nnetstat: %v\n", err)
	os.Exit(1)
}
