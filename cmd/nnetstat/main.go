// Command nnetstat lists connections on a running normand with full
// process attribution — the kernel-table join (flow ↔ pid/uid/command) that
// off-host interposition layers cannot produce.
package main

import (
	"flag"
	"fmt"
	"os"

	"norman/internal/ctl"
)

func main() {
	socket := flag.String("socket", ctl.DefaultSocket, "normand control socket")
	flag.Parse()

	c, err := ctl.Dial(*socket)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	var rows []ctl.NetstatData
	if err := c.Call(ctl.OpNetstat, nil, &rows); err != nil {
		fatal(err)
	}
	fmt.Printf("%-5s %-38s %-6s %-6s %-14s %s\n", "conn", "flow", "pid", "uid", "command", "opened")
	for _, r := range rows {
		fmt.Printf("%-5d %-38s %-6d %-6d %-14s %s\n", r.ConnID, r.Flow, r.PID, r.UID, r.Command, r.Opened)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nnetstat: %v\n", err)
	os.Exit(1)
}
