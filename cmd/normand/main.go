// Command normand runs a live simulated Norman host and serves the control
// socket that the administrative tools (niptables, ntc, ntcpdump, nnetstat,
// narp) talk to — Figure 1 of the paper as a runnable system.
//
// The host carries a demo workload: Bob's postgres answering queries,
// Charlie's backup pushing bulk data, Bob's game chattering, and (with
// -flood) a buggy ARP-spraying daemon to debug. Virtual time advances as
// tools interact (plus on demand via `narp -advance`), so the world is
// always live but never burns your CPU.
//
// Usage:
//
//	normand [-arch kopi|kernelstack|bypass|sidecar|hypervisor]
//	        [-socket /tmp/normand.sock] [-flood] [-shards N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"norman"
	"norman/internal/ctl"
	"norman/internal/health"
	"norman/internal/overload"
	"norman/internal/packet"
	"norman/internal/recovery"
	"norman/internal/upgrade"
	"norman/internal/wire"
)

func main() {
	archName := flag.String("arch", "kopi", "dataplane architecture to run")
	socket := flag.String("socket", ctl.DefaultSocket, "control socket path")
	flood := flag.Bool("flood", false, "include the buggy ARP-flooding daemon (the §2 debugging scenario)")
	journalPath := flag.String("journal", "", "persist the control-plane intent journal to this file; an existing journal is replayed on start (SIGKILL recovery)")
	journalCompact := flag.Int("journal-compact", 4096, "compact the journal on restart once it holds at least this many entries (0 disables)")
	shards := flag.Int("shards", 1, "engine shards for the world (>1 runs the lockstep barrier coordinator; inspect with nnetstat -shards)")
	flag.Parse()

	sys := norman.New(norman.Architecture(*archName), norman.WithShards(*shards))
	// Recovery before anything mutates: every dial and policy below lands
	// in the intent journal, so a SIGKILL'd daemon restarted with the same
	// -journal reconciles instead of starting blind.
	sys.EnableRecovery()
	// Overload control before the demo dials, so they pass through admission
	// like any tenant's would; the watchdog samples as ctl requests step
	// virtual time, and nnetstat -pressure reads its state.
	sys.EnableOverload(overload.Config{}).Start(0)
	// Tenant isolation over the demo users: bob is the latency-sensitive
	// tenant (weight 3), charlie the bulk one (weight 1). The weighted
	// scheduler, DDIO partition and per-tenant budgets are all live;
	// nnetstat -tenants reads the merged rows.
	if err := sys.EnableTenantIsolation(map[uint32]int{1: 3, 2: 1}); err != nil {
		log.Fatalf("normand: tenant isolation: %v", err)
	}
	// The hardware fast path: a 1024-entry exact-match flow cache in front
	// of the ingress overlay pipeline, partitioned by the tenant weights
	// above; nnetstat -flows reads its hit/install/evict accounting.
	if err := sys.EnableFlowCache(1024); err != nil {
		log.Fatalf("normand: flow cache: %v", err)
	}
	// Hardware-health monitoring over the NIC: flow-cache checksum failures,
	// trap storms, DMA stalls and link flaps quarantine the failing component
	// and fail traffic over to the kernel slow path; nnetstat -health reads
	// the component rows. Enabled after the flow cache so checksum
	// verification covers it from the first packet.
	sys.EnableHealth(health.Config{}).Start(0)
	// Live upgrades: staged A/B pipeline generations with canary-gated
	// cutover and automatic rollback; nnetstat -upgrade reads the phase and
	// the ctl upgrade.start op drives a same-policy flip.
	sys.EnableLiveUpgrade(upgrade.Config{})
	// Observability on from the start: the metrics registry and the packet
	// tracer feed nnetstat -metrics and ntcpdump -trace.
	reg := sys.EnableTelemetry()
	if *journalPath != "" {
		if err := attachJournal(sys, *journalPath, *journalCompact); err != nil {
			log.Fatalf("normand: journal: %v", err)
		}
	}
	// The far side of the link: a gateway endpoint (10.0.0.2) that echoes
	// UDP and answers pings, as any real peer would.
	net := wire.NewNetwork(sys.Arch())
	net.AddEndpoint(sys.World().PeerIP, sys.World().PeerMAC, wire.EchoUDP)

	bob := sys.AddUser(1001, "bob")
	charlie := sys.AddUser(1002, "charlie")
	sys.AssignTenant(bob, 1)
	sys.AssignTenant(charlie, 2)

	// Bob's postgres: steady request/response on port 5432.
	postgres := sys.Spawn(bob, "postgres")
	pgConn, err := sys.Dial(postgres, 5432, 5432)
	if err != nil {
		log.Fatalf("normand: postgres dial: %v", err)
	}
	loop(sys, pgConn, 256, 40*norman.Microsecond)

	// Charlie's backup: bulk transfer on port 873.
	backup := sys.Spawn(charlie, "backup")
	bkConn, err := sys.Dial(backup, 30873, 873)
	if err != nil {
		log.Fatalf("normand: backup dial: %v", err)
	}
	loop(sys, bkConn, 1460, 15*norman.Microsecond)

	// Bob's game: small chatty datagrams on an ephemeral port.
	game := sys.Spawn(bob, "game")
	gmConn, err := sys.Dial(game, 20101, 27015)
	if err != nil {
		log.Fatalf("normand: game dial: %v", err)
	}
	loop(sys, gmConn, 120, 25*norman.Microsecond)

	if *flood {
		leaky := sys.Spawn(charlie, "leakyd")
		leakConn, err := sys.Dial(leaky, 9999, 99)
		if err != nil {
			log.Fatalf("normand: leakyd dial: %v", err)
		}
		w := sys.World()
		target := uint32(0)
		var tick func()
		tick = func() {
			target++
			leakConn.SendRaw(packet.NewARPRequest(w.HostMAC, w.HostIP,
				packet.MakeIP(10, 0, byte(target>>8), byte(target))))
			sys.After(30*norman.Microsecond, tick)
		}
		sys.At(0, tick)
	}

	srv := ctl.NewServer(sys)
	srv.RegisterMetrics(reg, nil)
	fmt.Printf("normand: %s host up, %d demo processes, control socket %s\n",
		sys.ArchitectureName(), len(sys.Netstat()), *socket)
	if *flood {
		fmt.Println("normand: the ARP flooder is active — find it with ntcpdump/narp")
	}
	if err := srv.Listen(*socket); err != nil {
		fmt.Fprintf(os.Stderr, "normand: %v\n", err)
		os.Exit(1)
	}
}

// attachJournal wires durable journaling: an existing file is compacted when
// it has grown past the threshold (crash-safe rewrite: the dead entries of
// aborted, flushed, superseded and closed mutations are folded away), decoded
// and reconciled (the previous incarnation's intent, with its connections
// marked stale across the epoch), then every subsequent journal append is
// written through with an fsync — the write-ahead property survives SIGKILL.
func attachJournal(sys *norman.System, path string, compactAt int) error {
	if before, after, err := recovery.CompactFile(path, compactAt); err != nil {
		return fmt.Errorf("compacting %s: %w", path, err)
	} else if after < before {
		fmt.Printf("normand: compacted journal %s: %d -> %d entries\n", path, before, after)
	}
	var entries []recovery.Entry
	if f, err := os.Open(path); err == nil {
		entries, err = recovery.Decode(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("decoding %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	out, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// The persistence hook must be live before replay: recovery itself
	// appends the epoch-boundary entry, and if that entry never reaches the
	// file, the next incarnation's t=0 entries follow the old incarnation's
	// timestamps with no epoch between them and Verify rejects the journal
	// as time going backward.
	sys.Recovery().Journal().SetOnAppend(func(e recovery.Entry) {
		line, err := recovery.EncodeEntry(e)
		if err != nil {
			log.Printf("normand: journal encode: %v", err)
			return
		}
		if _, err := out.Write(line); err != nil {
			log.Printf("normand: journal write: %v", err)
			return
		}
		out.Sync()
	})
	if len(entries) > 0 {
		rep, rerr := sys.RecoverFromJournal(entries)
		if rerr != nil {
			return fmt.Errorf("replaying %s: %w", path, rerr)
		}
		fmt.Printf("normand: replayed %d journal entries from %s: %d rules, %d stale conns, %d repairs, clean=%v\n",
			rep.Entries, path, rep.Rules, rep.Stale, len(rep.Actions), rep.Clean)
		// Hot restart: re-adopt whatever pipeline generation the dataplane is
		// serving — replay rebuilt the control plane's intent, the NIC never
		// stopped forwarding, and adoption records the generation without a
		// flip or a flush.
		gen := sys.Upgrade().Adopt(sys.World().Eng.Now())
		fmt.Printf("normand: adopted live pipeline generation %d\n", gen)
	}
	return nil
}

// loop schedules an endless fixed-interval sender on a connection.
func loop(sys *norman.System, c *norman.Conn, payload int, every norman.Duration) {
	var tick func()
	tick = func() {
		c.Send(payload)
		sys.After(every, tick)
	}
	sys.At(0, tick)
}
