// Command kopibench regenerates the paper-reproduction experiments (E1–E16
// in DESIGN.md) and prints their tables.
//
// Usage:
//
//	kopibench                  # run every experiment at full scale, sequentially
//	kopibench -parallel        # fan each experiment's worlds across all cores
//	kopibench -workers 4       # explicit worker count (implies -parallel)
//	kopibench -e E3            # run one experiment
//	kopibench -scale 0.3       # compress durations/sweeps for a quick pass
//	kopibench -shards 8        # engine shards for E12–E16 (tables are shard-invariant)
//	kopibench -json            # also write BENCH_E*.json + BENCH_ENGINE.json
//	kopibench -outdir results  # where -json baselines land (default .)
//	kopibench -list            # list experiments
//	kopibench -metrics-out m.prom  # write the E9 telemetry registry (Prometheus text)
//	kopibench -pprof cpu.out   # write a CPU profile of the whole run
//
// The -json baselines are the repo's perf trajectory: each BENCH_E*.json
// records the experiment's wall-clock and simulated-event throughput at a
// given worker count, and BENCH_ENGINE.json records the raw event-engine
// dispatch rate and allocations per event. Future performance work is
// measured against these files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"runtime/pprof"

	"norman/internal/experiments"
	"norman/internal/mem"
	"norman/internal/sim"
	"norman/internal/stats"
)

type runner func(experiments.Scale) *stats.Table

var registry = map[string]struct {
	desc string
	run  runner
}{
	"E1": {"dataplane throughput/latency/CPU by architecture",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE1(s); return t }},
	"E2": {"§2 management-scenario capability matrix",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE2(s); return t }},
	"E3": {"RX goodput vs concurrent connections (DDIO cliff)",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE3(s); return t }},
	"E4": {"overlay reload vs bitstream respin (online reconfiguration)",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE4(s); return t }},
	"E5": {"NIC SRAM exhaustion and the software slow path",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE5(s); return t }},
	"E6": {"per-user QoS: weighted fairness and game shaping",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE6(s); return t }},
	"E7": {"blocking vs polling CPU efficiency",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE7(s); return t }},
	"E8": {"owner-based filtering under spoofing + classifier ablation",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE8(s); return t }},
	"E9": {"degradation under injected faults (wire/NIC/overlay), seeded by NORMAN_FAULT_SEED",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE9Telemetry(s, e9Telemetry); return t }},
	"E10": {"control-plane crash recovery: dataplane survival, journal replay, reconciliation",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE10(s); return t }},
	"E11": {"overload control across the DDIO cliff: admission, backpressure, priority shedding",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE11(s); return t }},
	"E12": {"sharded within-world engine: 10k-1M connections, shard-count-invariant tables",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE12(s, e12Shards); return t }},
	"E13": {"multi-tenant isolation: adversarial tenant vs victim p99, raw bypass vs governed KOPI",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE13(s, e12Shards); return t }},
	"E14": {"flow-cache fast path: hit rate, interpreter cycles and tenant partitions vs a short-flow flood",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE14(s, e12Shards); return t }},
	"E15": {"hardware fault tolerance: link flap, SRAM flip burst and trap storm vs health quarantine + slow-path failover, seeded by NORMAN_FAULT_SEED",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE15(s, e12Shards); return t }},
	"E16": {"live upgrade vs bitstream respin: staged A/B cutover, canary-gated commit and automatic rollback under the E14 victim workload",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE16(s, e12Shards); return t }},
}

// e12Shards is the -shards flag: how many engine shards E12–E16 spread their
// worlds over. The experiments' results are byte-identical at any value.
var e12Shards = 1

// e9Telemetry is the observability sink E9 fills when -metrics-out is set
// (nil otherwise, which keeps the plain benchmark path allocation-free).
var e9Telemetry *experiments.Telemetry

// benchRecord is one experiment's perf baseline, serialized to
// BENCH_<id>.json when -json is set.
type benchRecord struct {
	ID           string  `json:"id"`
	Desc         string  `json:"desc"`
	Scale        float64 `json:"scale"`
	Workers      int     `json:"workers"`
	WallMillis   float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// engineRecord is the raw event-engine baseline (BENCH_ENGINE.json): the
// budget every simulated nanosecond is paid out of.
type engineRecord struct {
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`

	// Sharded batched ring-drain baseline: aggregate dataplane events/s
	// when 8 lockstep shards each drain descriptor bursts instead of firing
	// one heap event per packet. Speedup is against events_per_sec above.
	ShardedShards       int     `json:"sharded_shards"`
	ShardedBatch        int     `json:"sharded_batch"`
	ShardedNsPerEvent   float64 `json:"sharded_ns_per_event"`
	ShardedEventsPerSec float64 `json:"sharded_events_per_sec"`
	ShardedSpeedup      float64 `json:"sharded_speedup"`
}

func main() {
	exp := flag.String("e", "", "experiment id (E1..E16); empty = all")
	scale := flag.Float64("scale", 1.0, "duration/sweep scale factor (1.0 = full)")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Bool("parallel", false, "fan each experiment's independent worlds across all cores")
	workersFlag := flag.Int("workers", 0, "worker-pool width (implies -parallel; 0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "write BENCH_<id>.json baselines (wall clock, events/sec) and BENCH_ENGINE.json")
	outdir := flag.String("outdir", ".", "directory -json baselines are written to")
	metricsOut := flag.String("metrics-out", "", "write the E9 run's telemetry registry (Prometheus text) to this file")
	pprofOut := flag.String("pprof", "", "write a CPU profile of the experiment runs to this file")
	shards := flag.Int("shards", 1, "engine shards for E12–E16 (results are invariant across shard counts)")
	flag.Parse()
	e12Shards = *shards

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kopibench: pprof: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "kopibench: pprof: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("    wrote %s\n", *pprofOut)
		}()
	}
	if *metricsOut != "" {
		e9Telemetry = experiments.NewTelemetry()
	}

	// Sequential by default so historical numbers stay comparable; the
	// pool is opt-in per run. NORMAN_WORKERS is honored only in parallel
	// mode (SetWorkers(0) defers to it).
	nWorkers := 1
	if *parallel || *workersFlag > 0 {
		experiments.SetWorkers(*workersFlag)
		nWorkers = experiments.Workers()
	} else {
		experiments.SetWorkers(1)
	}

	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Printf("%s  %s\n", id, registry[id].desc)
		}
		return
	}

	var selected []string
	if *exp == "" {
		selected = ids
	} else {
		id := strings.ToUpper(*exp)
		if _, ok := registry[id]; !ok {
			fmt.Fprintf(os.Stderr, "kopibench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		selected = []string{id}
	}

	if *jsonOut {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "kopibench: outdir: %v\n", err)
			os.Exit(1)
		}
	}

	for _, id := range selected {
		e := registry[id]
		fmt.Printf("=== %s: %s (scale %.2f, workers %d)\n", id, e.desc, *scale, nWorkers)
		firedBefore := sim.FiredTotal()
		start := time.Now()
		tbl := e.run(experiments.Scale(*scale))
		wall := time.Since(start)
		events := sim.FiredTotal() - firedBefore
		fmt.Println(tbl.String())
		fmt.Printf("--- %s done in %v (wall clock), %d events, %.1f Mevents/s\n\n",
			id, wall.Round(time.Millisecond), events, float64(events)/wall.Seconds()/1e6)

		if *jsonOut {
			rec := benchRecord{
				ID: id, Desc: e.desc, Scale: *scale, Workers: nWorkers,
				WallMillis:   float64(wall.Nanoseconds()) / 1e6,
				Events:       events,
				EventsPerSec: float64(events) / wall.Seconds(),
			}
			writeJSON(filepath.Join(*outdir, "BENCH_"+id+".json"), rec)
		}
	}

	if *metricsOut != "" {
		body := e9Telemetry.Registry.RenderPrometheus()
		if body == "" {
			fmt.Fprintln(os.Stderr, "kopibench: -metrics-out set but no telemetry collected (E9 not selected?)")
		}
		if err := os.WriteFile(*metricsOut, []byte(body), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "kopibench: write %s: %v\n", *metricsOut, err)
			os.Exit(1)
		}
		fmt.Printf("    wrote %s (%d metrics, layers %v)\n",
			*metricsOut, e9Telemetry.Registry.Len(), e9Telemetry.Registry.Layers())
	}

	if *jsonOut {
		fmt.Printf("=== engine: event dispatch microbenchmark\n")
		rec := engineBaseline()
		fmt.Printf("--- %.1f ns/event, %.1f Mevents/s, %d allocs/op\n",
			rec.NsPerEvent, rec.EventsPerSec/1e6, rec.AllocsPerOp)
		fmt.Printf("=== engine: sharded batched ring-drain microbenchmark (%d shards, batch %d)\n",
			shardedBenchShards, shardedBenchBatch)
		rec.ShardedShards = shardedBenchShards
		rec.ShardedBatch = shardedBenchBatch
		rec.ShardedNsPerEvent = shardedBaseline()
		rec.ShardedEventsPerSec = 1e9 / rec.ShardedNsPerEvent
		rec.ShardedSpeedup = rec.ShardedEventsPerSec / rec.EventsPerSec
		fmt.Printf("--- %.1f ns/event, %.1f Mevents/s aggregate, %.1fx single-loop dispatch\n",
			rec.ShardedNsPerEvent, rec.ShardedEventsPerSec/1e6, rec.ShardedSpeedup)
		writeJSON(filepath.Join(*outdir, "BENCH_ENGINE.json"), rec)
	}
}

// Sharded batched-drain baseline geometry: 8 lockstep shards, each draining
// 256-descriptor bursts from its own ring into flyweight records (a 4 KB
// scratch stays L1-resident; larger bursts spill and run slower).
const (
	shardedBenchShards = 8
	shardedBenchBatch  = 256
)

// shardedBaseline measures the aggregate dataplane event rate of the
// sharded engine's batched path: every shard runs a self-sustaining drain
// loop — pop a burst, update the flyweight slab per descriptor, recycle the
// burst — with the engine's fired counter credited per descriptor
// (sim.Engine.AddFired), the same accounting the QueueGroup receive path
// uses. Returns wall nanoseconds per dataplane event.
func shardedBaseline() float64 {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		quota := b.N/shardedBenchShards + 1
		s := sim.NewSharded(shardedBenchShards, shardedBenchShards, 2*sim.Microsecond)
		for sh := 0; sh < shardedBenchShards; sh++ {
			eng := s.Engine(sh)
			ring := mem.NewBurstRing(8*shardedBenchBatch, 0)
			slab := mem.NewConnSlab(1024, 0)
			scratch := make([]mem.PktRef, shardedBenchBatch)
			for i := 0; i < shardedBenchBatch; i++ {
				ring.Push(mem.PktRef{Conn: uint32(i % 1024), Len: 300})
			}
			done := 0
			var drain func()
			drain = func() {
				m := ring.PopBurst(scratch)
				for i := range scratch[:m] {
					d := &scratch[i]
					slab.RxPkts[d.Conn]++
					slab.RxBytes[d.Conn] += uint64(d.Len)
				}
				ring.PushBurst(scratch[:m])
				eng.AddFired(m - 1)
				done += m
				if done < quota {
					eng.After(100*sim.Nanosecond, drain)
				}
			}
			eng.At(0, drain)
		}
		s.Run()
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// engineBaseline measures raw event dispatch in-process (the same loop as
// BenchmarkEngineEventThroughput in internal/sim).
func engineBaseline() engineRecord {
	// Pin to one core for a stable single-threaded dispatch number.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine()
		var fire func()
		n := 0
		fire = func() {
			n++
			if n < b.N {
				e.After(sim.Nanosecond, fire)
			}
		}
		e.At(0, fire)
		e.Run()
	})
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return engineRecord{
		NsPerEvent:   ns,
		EventsPerSec: 1e9 / ns,
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
	}
}

func writeJSON(path string, v interface{}) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "kopibench: marshal %s: %v\n", path, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "kopibench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("    wrote %s\n", path)
}
