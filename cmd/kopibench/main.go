// Command kopibench regenerates the paper-reproduction experiments (E1–E8
// in DESIGN.md) and prints their tables.
//
// Usage:
//
//	kopibench              # run every experiment at full scale
//	kopibench -e E3        # run one experiment
//	kopibench -scale 0.3   # compress durations/sweeps for a quick pass
//	kopibench -list        # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"norman/internal/experiments"
	"norman/internal/stats"
)

type runner func(experiments.Scale) *stats.Table

var registry = map[string]struct {
	desc string
	run  runner
}{
	"E1": {"dataplane throughput/latency/CPU by architecture",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE1(s); return t }},
	"E2": {"§2 management-scenario capability matrix",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE2(s); return t }},
	"E3": {"RX goodput vs concurrent connections (DDIO cliff)",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE3(s); return t }},
	"E4": {"overlay reload vs bitstream respin (online reconfiguration)",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE4(s); return t }},
	"E5": {"NIC SRAM exhaustion and the software slow path",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE5(s); return t }},
	"E6": {"per-user QoS: weighted fairness and game shaping",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE6(s); return t }},
	"E7": {"blocking vs polling CPU efficiency",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE7(s); return t }},
	"E8": {"owner-based filtering under spoofing + classifier ablation",
		func(s experiments.Scale) *stats.Table { _, t := experiments.RunE8(s); return t }},
}

func main() {
	exp := flag.String("e", "", "experiment id (E1..E8); empty = all")
	scale := flag.Float64("scale", 1.0, "duration/sweep scale factor (1.0 = full)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Printf("%s  %s\n", id, registry[id].desc)
		}
		return
	}

	var selected []string
	if *exp == "" {
		selected = ids
	} else {
		id := strings.ToUpper(*exp)
		if _, ok := registry[id]; !ok {
			fmt.Fprintf(os.Stderr, "kopibench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		selected = []string{id}
	}

	for _, id := range selected {
		e := registry[id]
		fmt.Printf("=== %s: %s (scale %.2f)\n", id, e.desc, *scale)
		start := time.Now()
		tbl := e.run(experiments.Scale(*scale))
		fmt.Println(tbl.String())
		fmt.Printf("--- %s done in %v (wall clock)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
