package main

import "testing"

func TestClassFlags(t *testing.T) {
	c := classFlags{}
	if err := c.Set("1001=8"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("1002=0.5"); err != nil {
		t.Fatal(err)
	}
	if c[1001] != 8 || c[1002] != 0.5 {
		t.Fatalf("parsed: %v", c)
	}
	for _, bad := range []string{"nope", "x=1", "1=-?", "=", "1001="} {
		if err := c.Set(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
	if c.String() == "" {
		t.Fatal("String must render")
	}
}
