// Command ntc configures the egress scheduler on a running normand — the
// paper's QoS scenario as a tool. Classification is by owning user id,
// which only an OS-integrated interposition point can do.
//
//	ntc -qdisc wfq -class 1001=1 -class 1002=8      # bob weight 1, charlie 8
//	ntc -qdisc tbf -rate-gbps 1                      # cap everything at 1G
//	ntc -show
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"norman/internal/ctl"
)

// classFlags collects repeated -class uid=weight arguments.
type classFlags map[uint32]float64

func (c classFlags) String() string { return fmt.Sprintf("%v", map[uint32]float64(c)) }

func (c classFlags) Set(s string) error {
	uidStr, wStr, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want uid=weight, got %q", s)
	}
	uid, err := strconv.ParseUint(uidStr, 10, 32)
	if err != nil {
		return err
	}
	w, err := strconv.ParseFloat(wStr, 64)
	if err != nil {
		return err
	}
	c[uint32(uid)] = w
	return nil
}

func main() {
	socket := flag.String("socket", ctl.DefaultSocket, "normand control socket")
	qdisc := flag.String("qdisc", "", "install qdisc: wfq, drr, tbf, prio, pfifo")
	rate := flag.Float64("rate-gbps", 0, "tbf rate in Gbit/s")
	burst := flag.Float64("burst-kb", 64, "tbf burst in KiB")
	show := flag.Bool("show", false, "show current qdisc")
	classes := classFlags{}
	flag.Var(classes, "class", "uid=weight class mapping (repeatable)")
	flag.Parse()

	c, err := ctl.Dial(*socket)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch {
	case *show:
		var desc string
		if err := c.Call(ctl.OpTCShow, nil, &desc); err != nil {
			fatal(err)
		}
		fmt.Println(desc)
	case *qdisc != "":
		args := ctl.TCArgs{
			Kind:       *qdisc,
			Weights:    map[uint32]float64{},
			ClassOfUID: map[uint32]uint32{},
			RateBps:    *rate * 1e9 / 8,
			BurstBytes: *burst * 1024,
		}
		class := uint32(1)
		for uid, w := range classes {
			args.Weights[class] = w
			args.ClassOfUID[uid] = class
			class++
		}
		if err := c.Call(ctl.OpTCSet, args, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("qdisc %s installed\n", *qdisc)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	var u *ctl.Unreachable
	if errors.As(err, &u) {
		fmt.Fprintf(os.Stderr, "ntc: normand unreachable at %s\n", u.Addr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ntc: %v\n", err)
	os.Exit(1)
}
