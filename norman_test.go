package norman_test

import (
	"strings"
	"testing"

	"norman"
)

func TestQuickstartFlow(t *testing.T) {
	sys := norman.New(norman.KOPI)
	sys.UseEchoPeer()
	alice := sys.AddUser(1000, "alice")
	app := sys.Spawn(alice, "app")
	conn, err := sys.Dial(app, 40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	echoes := 0
	conn.OnReceive(func(d norman.Delivery) {
		echoes++
		if d.Payload != 512 {
			t.Errorf("payload %d", d.Payload)
		}
		if !strings.HasPrefix(d.From, "10.0.0.2:") {
			t.Errorf("from %q", d.From)
		}
		if echoes < 10 {
			conn.Send(512)
		}
	})
	conn.Send(512)
	end := sys.Run()
	if echoes != 10 {
		t.Fatalf("echoes = %d", echoes)
	}
	if end <= 0 || sys.Now() != end {
		t.Fatalf("clock: %v %v", end, sys.Now())
	}
	if conn.Delivered() != 10 {
		t.Fatalf("delivered = %d", conn.Delivered())
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sys.Netstat()) != 0 {
		t.Fatal("netstat after close should be empty")
	}
}

func TestDialConflictsAndErrors(t *testing.T) {
	sys := norman.New(norman.KOPI)
	sys.UseEchoPeer()
	u := sys.AddUser(1, "u")
	p1 := sys.Spawn(u, "a")
	p2 := sys.Spawn(u, "b")
	if _, err := sys.Dial(p1, 5000, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Dial(p2, 5000, 7); err == nil {
		t.Fatal("port conflict must fail")
	}
}

func TestCapabilitiesDifferByArchitecture(t *testing.T) {
	for _, a := range norman.Architectures() {
		sys := norman.New(a)
		caps := sys.Capabilities()
		switch a {
		case norman.Bypass:
			if caps.OwnerFiltering || caps.BlockingIO {
				t.Errorf("bypass caps: %+v", caps)
			}
			if caps.Transfers != 1 {
				t.Errorf("bypass transfers: %d", caps.Transfers)
			}
		case norman.KOPI:
			if !caps.OwnerFiltering || !caps.BlockingIO || caps.Transfers != 1 {
				t.Errorf("kopi caps: %+v", caps)
			}
		case norman.KernelStack:
			if caps.Transfers != 2 || !caps.OwnerFiltering {
				t.Errorf("kernelstack caps: %+v", caps)
			}
		}
	}
}

func TestAdminRuleValidation(t *testing.T) {
	sys := norman.New(norman.KOPI)
	if err := sys.IPTablesAppend(norman.Output, norman.Rule{Proto: "icmpx"}); err == nil {
		t.Fatal("bad proto must fail")
	}
	if err := sys.IPTablesAppend(norman.Output, norman.Rule{SrcNet: "banana"}); err == nil {
		t.Fatal("bad CIDR must fail")
	}
	if err := sys.IPTablesAppend(norman.Output, norman.Rule{Action: "explode"}); err == nil {
		t.Fatal("bad action must fail")
	}
	if err := sys.IPTablesAppend(norman.Output, norman.Rule{
		Proto: "udp", SrcNet: "10.0.0.0/8", DstPort: 53, Action: "drop",
	}); err != nil {
		t.Fatalf("valid rule: %v", err)
	}
}

func TestBypassRefusesAdminVerbs(t *testing.T) {
	sys := norman.New(norman.Bypass)
	if err := sys.IPTablesAppend(norman.Output, norman.Rule{Action: "drop"}); err == nil {
		t.Fatal("bypass iptables must fail")
	}
	if _, err := sys.Tcpdump("udp"); err == nil {
		t.Fatal("bypass tcpdump must fail")
	}
	if err := sys.TCSet(norman.QdiscSpec{Kind: "wfq"}, nil); err == nil {
		t.Fatal("bypass tc must fail")
	}
}

func TestBlockingAPI(t *testing.T) {
	sys := norman.New(norman.KOPI)
	sys.UseSinkPeer()
	u := sys.AddUser(1, "u")
	p := sys.Spawn(u, "worker")
	conn, err := sys.Dial(p, 7000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetBlocking(true); err != nil {
		t.Fatalf("kopi must support blocking: %v", err)
	}
	got := 0
	conn.OnReceive(func(norman.Delivery) { got++ })
	sys.At(10*norman.Microsecond, func() { sys.InjectInbound(conn, 128) })
	sys.Run()
	if got != 1 {
		t.Fatalf("blocked receiver woke %d times", got)
	}

	bp := norman.New(norman.Bypass)
	bp.UseSinkPeer()
	u2 := bp.AddUser(1, "u")
	p2 := bp.Spawn(u2, "w")
	c2, err := bp.Dial(p2, 7000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.SetBlocking(true); err == nil {
		t.Fatal("bypass blocking must fail")
	}
}

func TestTcpdumpAttribution(t *testing.T) {
	sys := norman.New(norman.KOPI)
	sys.UseSinkPeer()
	u := sys.AddUser(1000, "alice")
	p := sys.Spawn(u, "sender")
	conn, err := sys.Dial(p, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	capture, err := sys.Tcpdump("uid 1000")
	if err != nil {
		t.Fatal(err)
	}
	conn.SendBatch(100, 5)
	sys.Run()
	_, matched := capture.Counters()
	if matched != 5 {
		t.Fatalf("matched %d", matched)
	}
	for _, r := range capture.Records() {
		if r.Attribution() == "?" {
			t.Fatal("kopi records must be attributed")
		}
	}

	// The same uid filter is rejected where no process view exists.
	hv := norman.New(norman.Hypervisor)
	if _, err := hv.Tcpdump("uid 1000"); err == nil {
		t.Fatal("hypervisor must reject uid capture filters")
	}
	if _, err := hv.Tcpdump("udp"); err != nil {
		t.Fatalf("plain filters work on the hypervisor: %v", err)
	}
}

func TestWithOptions(t *testing.T) {
	sys := norman.New(norman.KOPI, norman.WithNICSRAM(1024), norman.WithRingSize(16))
	u := sys.AddUser(1, "u")
	p := sys.Spawn(u, "a")
	opened := 0
	for i := 0; i < 10; i++ {
		if _, err := sys.Dial(p, uint16(6000+i), 7); err == nil {
			opened++
		}
	}
	if opened >= 10 {
		t.Fatal("tiny SRAM budget must limit connections")
	}
	sys2 := norman.New(norman.KOPI, norman.WithoutCacheModel())
	if sys2.World().LLC != nil {
		t.Fatal("WithoutCacheModel must disable the LLC")
	}
}

func TestPerConnRateLimitAPI(t *testing.T) {
	sys := norman.New(norman.KOPI)
	sink := sys.UseSinkPeer()
	u := sys.AddUser(1, "u")
	p := sys.Spawn(u, "a")
	conn, err := sys.Dial(p, 6000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetRateLimit(10e6); err != nil { // 10 MB/s
		t.Fatal(err)
	}
	conn.SendBatch(1460, 40)
	end := sys.Run()
	if sink.Packets != 40 {
		t.Fatalf("delivered %d", sink.Packets)
	}
	// 40 × 1502B at 10 MB/s ≈ 6 ms; unthrottled this takes microseconds.
	if end < 4*norman.Millisecond {
		t.Fatalf("rate limit not enforced: finished in %v", end)
	}

	ks := norman.New(norman.KernelStack)
	u2 := ks.AddUser(1, "u")
	p2 := ks.Spawn(u2, "a")
	c2, err := ks.Dial(p2, 6000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.SetRateLimit(1e6); err == nil {
		t.Fatal("kernelstack conns own no NIC queues to pace")
	}
}

func TestPingAPI(t *testing.T) {
	sys := norman.New(norman.KOPI)
	sys.UseEchoPeer() // UDP-only peer: replace with a real endpoint below
	w := sys.World()
	// Install a pingable endpoint at the peer address.
	_ = w
	net := newTestNetwork(sys)
	_ = net

	var rtt norman.Duration
	var ok bool
	if err := sys.Ping("10.0.0.2", func(d norman.Duration, o bool) { rtt, ok = d, o }); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if !ok || rtt < 4*norman.Microsecond {
		t.Fatalf("ping: ok=%v rtt=%v", ok, rtt)
	}
	if err := sys.Ping("not-an-ip", nil); err == nil {
		t.Fatal("bad address must fail")
	}

	bp := norman.New(norman.Bypass)
	if err := bp.Ping("10.0.0.2", nil); err == nil {
		t.Fatal("bypass ping must fail")
	}
}
