package norman_test

import (
	"bytes"
	"errors"
	"testing"

	"norman"
	"norman/internal/recovery"
	"norman/internal/sim"
)

// TestKOPISurvivesControlPlaneCrash is the PR's headline behavior: on KOPI
// the policies live on the NIC, so a control-plane crash freezes them in
// place — traffic keeps flowing (and keeps being filtered!) through the
// outage, mutations are refused with the typed error, and the restart
// reconciles cleanly.
func TestKOPISurvivesControlPlaneCrash(t *testing.T) {
	sys := norman.New(norman.KOPI)
	sys.EnableRecovery()
	sys.UseEchoPeer()
	u := sys.AddUser(1000, "alice")
	app := sys.Spawn(u, "svc")
	conn, err := sys.Dial(app, 40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A drop rule that must keep filtering through the outage.
	if err := sys.IPTablesAppend(norman.Output, norman.Rule{Proto: "udp", DstPort: 9999, Action: "drop"}); err != nil {
		t.Fatal(err)
	}
	got := 0
	conn.OnReceive(func(d norman.Delivery) { got++ })

	if err := sys.CrashControlPlane(); err != nil {
		t.Fatal(err)
	}
	// Mutations fail typed while down.
	if err := sys.IPTablesAppend(norman.Input, norman.Rule{Action: "count"}); !errors.Is(err, norman.ErrControlPlaneDown) {
		t.Fatalf("append while down = %v", err)
	}
	if _, err := sys.Dial(app, 40001, 7); !errors.Is(err, norman.ErrControlPlaneDown) {
		t.Fatalf("dial while down = %v", err)
	}
	// The dataplane does not care: sends still echo back.
	for i := 0; i < 5; i++ {
		conn.Send(256)
	}
	sys.Run()
	if got != 5 {
		t.Fatalf("delivered %d/5 during control-plane outage", got)
	}

	rep, err := sys.RestartControlPlane()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || !rep.InvariantsOK {
		t.Fatalf("restart not clean: %+v", rep)
	}
	if rep.Rejected < 2 {
		t.Fatalf("rejected = %d, want the outage mutations counted", rep.Rejected)
	}
	// The crash wiped the control plane's rule memory; the reconciler must
	// have rebuilt it from the journal, admin view included.
	rules := sys.IPTablesList()
	if len(rules) != 1 || rules[0].Rule.DstPort != 9999 {
		t.Fatalf("rules after recovery = %+v", rules)
	}
	// And mutations work again.
	if err := sys.IPTablesAppend(norman.Input, norman.Rule{Action: "count"}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelStackCrashStopsDataplane is the contrast: where the control
// plane IS the dataplane, the outage drops traffic on the floor.
func TestKernelStackCrashStopsDataplane(t *testing.T) {
	sys := norman.New(norman.KernelStack)
	sys.EnableRecovery()
	sys.UseEchoPeer()
	u := sys.AddUser(1000, "alice")
	app := sys.Spawn(u, "svc")
	conn, err := sys.Dial(app, 40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	conn.OnReceive(func(d norman.Delivery) { got++ })
	if err := sys.CrashControlPlane(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		conn.Send(256)
	}
	sys.Run()
	if got != 0 {
		t.Fatalf("delivered %d during a kernel-stack outage, want 0", got)
	}
	if _, err := sys.RestartControlPlane(); err != nil {
		t.Fatal(err)
	}
	conn.Send(256)
	sys.Run()
	if got != 1 {
		t.Fatalf("delivered %d after restart, want 1", got)
	}
}

// TestRejectedPerOutage pins Report.Rejected to the outage it reports:
// across two crash/restart cycles each restart must count only its own
// outage's refused mutations, not the lifetime total.
func TestRejectedPerOutage(t *testing.T) {
	sys := norman.New(norman.KOPI)
	sys.EnableRecovery()
	sys.UseEchoPeer()

	if err := sys.CrashControlPlane(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := sys.IPTablesAppend(norman.Input, norman.Rule{Action: "count"}); !errors.Is(err, norman.ErrControlPlaneDown) {
			t.Fatalf("append while down = %v", err)
		}
	}
	rep, err := sys.RestartControlPlane()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 2 {
		t.Fatalf("first outage rejected = %d, want 2", rep.Rejected)
	}

	if err := sys.CrashControlPlane(); err != nil {
		t.Fatal(err)
	}
	if err := sys.IPTablesAppend(norman.Input, norman.Rule{Action: "count"}); !errors.Is(err, norman.ErrControlPlaneDown) {
		t.Fatalf("append while down = %v", err)
	}
	rep, err = sys.RestartControlPlane()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 1 {
		t.Fatalf("second outage rejected = %d, want 1 (not the lifetime total)", rep.Rejected)
	}
}

// TestJournalPersistsEpochAcrossIncarnations models three normand
// incarnations over one persisted journal, with the persistence hook
// installed before recovery — the attachJournal order. Recovery appends the
// epoch-boundary entry through the hook, so the third incarnation finds
// inc1 entries, an epoch, then inc2's t=0 entries, and Verify accepts the
// clock restarting. If the epoch were not persisted, this load would fail
// with "journal time goes backward".
func TestJournalPersistsEpochAcrossIncarnations(t *testing.T) {
	// Incarnation 1: hook installed from the start, mutations at t>0.
	var file bytes.Buffer
	persist := func(e recovery.Entry) {
		line, err := recovery.EncodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		file.Write(line)
	}
	sys1 := norman.New(norman.KOPI)
	sys1.EnableRecovery().Journal().SetOnAppend(persist)
	sys1.UseEchoPeer()
	sys1.RunFor(5 * sim.Millisecond)
	u := sys1.AddUser(1000, "alice")
	if _, err := sys1.Dial(sys1.Spawn(u, "svc"), 40000, 7); err != nil {
		t.Fatal(err)
	}
	if err := sys1.IPTablesAppend(norman.Output, norman.Rule{Proto: "udp", DstPort: 9999, Action: "drop"}); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2 (SIGKILL'd inc1): hook installed *before* recovery, as
	// attachJournal does, then fresh t=0 mutations after the replay.
	entries, err := recovery.Decode(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sys2 := norman.New(norman.KOPI)
	sys2.EnableRecovery().Journal().SetOnAppend(persist)
	sys2.UseEchoPeer()
	if _, err := sys2.RecoverFromJournal(entries); err != nil {
		t.Fatal(err)
	}
	u2 := sys2.AddUser(1000, "alice")
	if _, err := sys2.Dial(sys2.Spawn(u2, "svc"), 40001, 7); err != nil {
		t.Fatal(err)
	}

	// Incarnation 3: the persisted file must verify and replay — both
	// previous incarnations' connections stale, the rule still intended.
	entries, err = recovery.Decode(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sys3 := norman.New(norman.KOPI)
	sys3.UseEchoPeer()
	rep, err := sys3.RecoverFromJournal(entries)
	if err != nil {
		t.Fatalf("third incarnation refused the journal: %v", err)
	}
	if rep.Stale != 2 {
		t.Fatalf("stale = %d, want both dead incarnations' conns", rep.Stale)
	}
	if !rep.InvariantsOK {
		t.Fatalf("invariants: %+v", rep.Invariants)
	}
	rules := sys3.IPTablesList()
	if len(rules) != 1 || rules[0].Rule.DstPort != 9999 {
		t.Fatalf("rules after second cold start = %+v", rules)
	}
}

// TestRecoverFromJournalColdStart models a normand SIGKILL + restart: the
// journal survives on disk (here: encoded bytes), the new incarnation loads
// it, marks the epoch, reinstalls policies, and reports the old
// connections stale rather than resurrecting them.
func TestRecoverFromJournalColdStart(t *testing.T) {
	// First incarnation journals a rule, a qdisc and a connection.
	sys1 := norman.New(norman.KOPI)
	rec1 := sys1.EnableRecovery()
	sys1.UseEchoPeer()
	// Advance virtual time before mutating: the second incarnation's clock
	// restarts at zero, so its epoch entry lands "before" these journal
	// timestamps — Verify must treat the epoch as a time-baseline reset.
	sys1.RunFor(5 * sim.Millisecond)
	u := sys1.AddUser(1000, "alice")
	app := sys1.Spawn(u, "svc")
	if _, err := sys1.Dial(app, 40000, 7); err != nil {
		t.Fatal(err)
	}
	if err := sys1.IPTablesAppend(norman.Output, norman.Rule{Proto: "udp", DstPort: 9999, Action: "drop"}); err != nil {
		t.Fatal(err)
	}
	if err := sys1.TCSet(norman.QdiscSpec{Kind: "wfq", Weights: map[uint32]float64{1: 3}}, map[uint32]uint32{1000: 1}); err != nil {
		t.Fatal(err)
	}
	var persisted bytes.Buffer
	if err := rec1.Journal().Encode(&persisted); err != nil {
		t.Fatal(err)
	}

	// SIGKILL; the second incarnation is a fresh world with the old log.
	entries, err := recovery.Decode(&persisted)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := norman.New(norman.KOPI)
	sys2.UseEchoPeer()
	rep, err := sys2.RecoverFromJournal(entries)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stale != 1 {
		t.Fatalf("stale = %d, want the pre-epoch conn", rep.Stale)
	}
	if rep.Conns != 0 {
		t.Fatalf("conns = %d, want none resurrected", rep.Conns)
	}
	if !rep.InvariantsOK {
		t.Fatalf("invariants: %+v", rep.Invariants)
	}
	rules := sys2.IPTablesList()
	if len(rules) != 1 || rules[0].Rule.DstPort != 9999 {
		t.Fatalf("rules after cold start = %+v", rules)
	}
	// The reinstalled drop rule must actually filter.
	app2 := sys2.Spawn(sys2.AddUser(1000, "alice"), "svc")
	c2, err := sys2.Dial(app2, 40002, 9999)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	c2.OnReceive(func(norman.Delivery) { got++ })
	c2.Send(128)
	sys2.Run()
	if got != 0 {
		t.Fatal("recovered drop rule did not filter")
	}
}
