package norman

import (
	"fmt"
	"sort"
)

// TenantStatus is one tenant's combined isolation state: scheduler grants,
// DDIO partition counters, and governor accounting, merged for ctl and
// nnetstat. Fields that a disabled layer cannot fill stay zero.
type TenantStatus struct {
	Tenant     uint32 `json:"tenant"`
	Weight     int    `json:"weight"`
	PipeGrants uint64 `json:"pipe_grants"`
	DMAGrants  uint64 `json:"dma_grants"`
	// PipeWaitNs/DMAWaitNs surface the scheduler's queue-wait accounting —
	// computed since PR 7 but previously dropped on the way to ctl/nnetstat.
	PipeWaitNs  uint64 `json:"pipe_wait_ns"`
	DMAWaitNs   uint64 `json:"dma_wait_ns"`
	FifoDrops   uint64 `json:"fifo_drops"`
	DDIOWays    int    `json:"ddio_ways"`
	DDIOHits    uint64 `json:"ddio_hits"`
	DDIOMisses  uint64 `json:"ddio_misses"`
	Conns       int    `json:"conns"`
	RingBytes   int    `json:"ring_bytes"`
	RingBudget  int    `json:"ring_budget_bytes"`
	State       string `json:"state"`
	Transitions uint64 `json:"transitions"`
}

// EnableTenantIsolation turns on multi-tenant performance isolation across
// the whole dataplane: the NIC's pipeline and DMA engine are scheduled by
// weighted deficit round-robin over the given tenants, the LLC's DDIO ways
// are partitioned among them in proportion to weight (largest remainder,
// at least one way each), and — if the overload governor is enabled — its
// descriptor budget is split into per-tenant shares with private health
// machines. Weights must be positive; calling again replaces the previous
// configuration. The mapping from users to tenants is set with
// AssignTenant; unassigned users are their own tenant (tenant id = uid).
func (s *System) EnableTenantIsolation(weights map[uint32]int) error {
	if len(weights) == 0 {
		return fmt.Errorf("norman: tenant isolation needs at least one tenant weight")
	}
	for id, w := range weights {
		if w <= 0 {
			return fmt.Errorf("norman: tenant %d weight %d (must be positive)", id, w)
		}
	}
	if s.w.LLC != nil {
		if ways := s.w.LLC.DDIOWays(); ways > 0 {
			shares, err := splitWays(weights, ways)
			if err != nil {
				return err
			}
			if err := s.w.LLC.PartitionDDIO(shares); err != nil {
				return err
			}
		}
	}
	s.w.NIC.SetTenantScheduler(weights)
	if fc := s.w.NIC.FlowCache(); fc != nil {
		if err := fc.SetQuotas(weights); err != nil {
			return err
		}
	}
	if s.gov != nil {
		s.gov.ConfigureTenants(weights)
	}
	return nil
}

// AssignTenant maps a user to a tenant for isolation accounting. Every
// packet the kernel attributes to the user carries the tenant id through
// the dataplane. Tenant 0 clears the mapping (the user reverts to being
// its own tenant).
func (s *System) AssignTenant(u *User, tenant uint32) {
	s.w.Kern.AssignTenant(u.UID, tenant)
}

// TenantIsolationEnabled reports whether the NIC's tenant scheduler is
// installed.
func (s *System) TenantIsolationEnabled() bool {
	return s.w.NIC.TenantScheduler() != nil
}

// TenantsStatus merges the scheduler, cache and governor views into one
// row per tenant, in ascending tenant order. Nil when isolation is off.
func (s *System) TenantsStatus() []TenantStatus {
	ts := s.w.NIC.TenantScheduler()
	if ts == nil {
		return nil
	}
	rows := make(map[uint32]*TenantStatus)
	order := []uint32{}
	row := func(id uint32) *TenantStatus {
		if r, ok := rows[id]; ok {
			return r
		}
		r := &TenantStatus{Tenant: id}
		rows[id] = r
		order = append(order, id)
		return r
	}
	for _, st := range ts.Stats() {
		r := row(st.Tenant)
		r.Weight = st.Weight
		r.PipeGrants = st.PipeGrants
		r.DMAGrants = st.DMAGrants
		r.PipeWaitNs = uint64(st.PipeWait / Nanosecond)
		r.DMAWaitNs = uint64(st.DMAWait / Nanosecond)
		r.FifoDrops = st.RxFifoDrops
	}
	if s.w.LLC != nil {
		for _, cs := range s.w.LLC.TenantDMAStats() {
			r := row(cs.Tenant)
			r.DDIOWays = cs.Ways
			r.DDIOHits = cs.Hits
			r.DDIOMisses = cs.Misses
		}
	}
	if s.gov != nil {
		for _, gs := range s.gov.TenantSnapshots() {
			r := row(gs.Tenant)
			r.Conns = gs.Conns
			r.RingBytes = gs.RingBytes
			r.RingBudget = gs.RingBudget
			r.State = gs.State
			r.Transitions = gs.Transitions
			if gs.FifoDrops > r.FifoDrops {
				r.FifoDrops = gs.FifoDrops
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]TenantStatus, 0, len(order))
	for _, id := range order {
		out = append(out, *rows[id])
	}
	return out
}

// splitWays divides `ways` cache ways among tenants in proportion to their
// weights: every tenant gets at least one way, the rest go by largest
// remainder (ties broken by ascending tenant id, so the split is
// deterministic). Errors when there are more tenants than ways.
func splitWays(weights map[uint32]int, ways int) (map[uint32]int, error) {
	n := len(weights)
	if n > ways {
		return nil, fmt.Errorf("norman: %d tenants cannot each hold a way of a %d-way DDIO region", n, ways)
	}
	ids := make([]uint32, 0, n)
	total := 0
	for id, w := range weights {
		ids = append(ids, id)
		total += w
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	extra := ways - n
	type frac struct {
		id  uint32
		rem int
	}
	shares := make(map[uint32]int, n)
	fr := make([]frac, 0, n)
	used := 0
	for _, id := range ids {
		e := extra * weights[id] / total
		shares[id] = 1 + e
		used += 1 + e
		fr = append(fr, frac{id: id, rem: extra * weights[id] % total})
	}
	sort.SliceStable(fr, func(i, j int) bool {
		if fr[i].rem != fr[j].rem {
			return fr[i].rem > fr[j].rem
		}
		return fr[i].id < fr[j].id
	})
	for i := 0; used < ways && i < len(fr); i++ {
		shares[fr[i].id]++
		used++
	}
	return shares, nil
}
