module norman

go 1.22
