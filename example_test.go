package norman_test

import (
	"fmt"

	"norman"
	"norman/internal/wire"
)

// The smallest complete Norman program: open a connection through the
// kernel control plane, exchange echoes with the peer, and read the
// netstat attribution back.
func Example() {
	sys := norman.New(norman.KOPI)
	sys.UseEchoPeer()

	alice := sys.AddUser(1000, "alice")
	app := sys.Spawn(alice, "myapp")
	conn, err := sys.Dial(app, 40000, 7)
	if err != nil {
		panic(err)
	}

	echoes := 0
	conn.OnReceive(func(d norman.Delivery) {
		echoes++
		if echoes < 3 {
			conn.Send(512)
		}
	})
	conn.Send(512)
	sys.Run()

	fmt.Println("echoes:", echoes)
	for _, row := range sys.Netstat() {
		fmt.Printf("conn %d owned by uid=%d cmd=%s\n", row.ConnID, row.UID, row.Command)
	}
	// Output:
	// echoes: 3
	// conn 1 owned by uid=1000 cmd=myapp
}

// Owner-based filtering — the §2 port-partitioning policy — is an ordinary
// iptables append on KOPI, and an error on architectures that cannot
// express it.
func ExampleSystem_IPTablesAppend() {
	kopi := norman.New(norman.KOPI)
	err := kopi.IPTablesAppend(norman.Output, norman.Rule{
		Proto: "udp", DstPort: 5432,
		OwnerUID: norman.UID(1001), OwnerCmd: "postgres",
		Action: "accept",
	})
	fmt.Println("kopi:", err)

	bypass := norman.New(norman.Bypass)
	err = bypass.IPTablesAppend(norman.Output, norman.Rule{
		Proto: "udp", DstPort: 5432, Action: "drop",
	})
	fmt.Println("bypass supported:", err == nil)
	// Output:
	// kopi: <nil>
	// bypass supported: false
}

// Capture with process attribution: the Norman tcpdump extension `uid N`
// only parses where the interposition layer has a process view.
func ExampleSystem_Tcpdump() {
	sys := norman.New(norman.KOPI)
	sys.UseSinkPeer()
	u := sys.AddUser(1000, "alice")
	app := sys.Spawn(u, "sender")
	conn, _ := sys.Dial(app, 4000, 9)

	capture, err := sys.Tcpdump("udp and uid 1000")
	if err != nil {
		panic(err)
	}
	conn.SendBatch(100, 3)
	sys.Run()

	_, matched := capture.Counters()
	fmt.Println("matched:", matched)
	fmt.Println("attributed:", capture.Records()[0].Attribution())
	// Output:
	// matched: 3
	// attributed: uid=1000 pid=1001 cmd=sender
}

// A reliable transfer through the library transport (§4.2): the stream runs
// in the application, the NIC still sees every segment.
func ExampleConn_StartTransfer() {
	sys := norman.New(norman.KOPI)
	peer := sys.UseTransportPeer(5001, 0)

	u := sys.AddUser(1000, "alice")
	app := sys.Spawn(u, "copytool")
	conn, _ := sys.DialTCP(app, 4001, 5001)

	stream := conn.StartTransfer(256<<10, nil)
	sys.Run()

	fmt.Println("done:", stream.Done())
	fmt.Println("received:", peer.ReceivedBytes())
	// Output:
	// done: true
	// received: 262144
}

// newTestNetwork attaches a wire.Network with one pingable endpoint at the
// canonical peer address; shared by tests that need ICMP-capable peers.
func newTestNetwork(sys *norman.System) interface{} {
	n := wire.NewNetwork(sys.Arch())
	n.AddEndpoint(sys.World().PeerIP, sys.World().PeerMAC, wire.EchoUDP)
	return n
}
