// Overlay programmability (§4.4): the dataplane is a processor. This
// example hand-writes two overlay programs — a 1-in-8 sampling mirror and a
// token-bucket port meter — verifies and loads them onto a live KOPI host's
// NIC *while traffic flows*, and hot-swaps between them. The swap is a
// microsecond control-plane operation with zero packet loss; contrast the
// multi-second bitstream respin (experiment E4).
package main

import (
	"fmt"

	"norman"
	"norman/internal/core"
	"norman/internal/nic"
	"norman/internal/overlay"
)

func main() {
	sys := norman.New(norman.KOPI)
	sink := sys.UseSinkPeer()

	alice := sys.AddUser(1000, "alice")
	app := sys.Spawn(alice, "app")
	conn, err := sys.Dial(app, 4000, 7777)
	if err != nil {
		panic(err)
	}

	// Phase 1: load the sampling mirror on the egress pipeline, with a
	// capture tap to receive the samples.
	capture, err := sys.Tcpdump("")
	if err != nil {
		panic(err)
	}
	mirror, err := overlay.Assemble("sample8", core.SamplingMirrorProgram(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("program: 1-in-8 sampling mirror")
	fmt.Println(overlay.Disassemble(mirror))

	w := sys.World()
	if _, load, err := w.NIC.LoadProgram(nic.Egress, mirror); err != nil {
		panic(err)
	} else {
		fmt.Printf("loaded in %v of control-plane time\n\n", load)
	}

	for i := 0; i < 64; i++ {
		i := i
		sys.At(norman.Duration(i)*10*norman.Microsecond, func() { conn.Send(200) })
	}
	sys.Run()
	// The tap sees every transmitted frame once (tcpdump semantics) plus
	// one extra copy per overlay `mirror`; the sample count is the excess.
	_, matched := capture.Counters()
	fmt.Printf("phase 1: sent 64, wire delivered %d, overlay-mirrored %d (want 64, 64, 8)\n\n",
		sink.Packets, matched-sink.Packets)

	// Phase 2: hot-swap to a meter that rate-limits port 7777 hard.
	meter, err := overlay.Assemble("meter7777", core.PortMeterProgram(7777, 20e3, 300))
	if err != nil {
		panic(err)
	}
	if _, load, err := w.NIC.LoadProgram(nic.Egress, meter); err != nil {
		panic(err)
	} else {
		fmt.Printf("hot-swapped to port meter in %v; dataplane never stopped\n", load)
	}

	before := sink.Packets
	for i := 0; i < 64; i++ {
		i := i
		sys.At(sys.Now()+norman.Duration(i)*10*norman.Microsecond, func() { conn.Send(200) })
	}
	sys.Run()
	delivered := sink.Packets - before
	m := w.NIC.Machine(nic.Egress)
	fmt.Printf("phase 2: sent 64, wire delivered %d, meter shed %d\n",
		delivered, m.Counter("shed"))
}
