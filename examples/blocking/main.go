// Process scheduling (§2 of the paper): applications with intermittent
// traffic want to *sleep* until data arrives, but kernel bypass means the
// kernel never sees arrivals and cannot wake anyone — so apps poll and burn
// whole cores. KOPI's NIC appends to a shared notification queue that the
// kernel monitors (§4.3), restoring blocking I/O. This example measures
// cores burned and delivery latency for poll vs block at a low arrival
// rate, where the difference is most painful.
package main

import (
	"fmt"

	"norman"
)

func main() {
	fmt.Println("workload: 5000 packets/s inbound for 20ms of virtual time")
	fmt.Printf("%-12s  %-7s  %-13s  %-12s  %s\n", "architecture", "mode", "cores burned", "p50 latency", "delivered")
	for _, archName := range []norman.Architecture{norman.Bypass, norman.KernelStack, norman.KOPI} {
		for _, block := range []bool{false, true} {
			run(archName, block)
		}
	}
}

func run(archName norman.Architecture, block bool) {
	sys := norman.New(archName)
	sys.UseSinkPeer()

	bob := sys.AddUser(1001, "bob")
	worker := sys.Spawn(bob, "worker")
	conn, err := sys.Dial(worker, 7000, 7)
	if err != nil {
		panic(err)
	}

	mode := "poll"
	if block {
		mode = "block"
		if err := conn.SetBlocking(true); err != nil {
			fmt.Printf("%-12s  %-7s  %v\n", archName, mode, err)
			return
		}
	}

	var delivered uint64
	var latSum norman.Duration
	conn.OnReceive(func(d norman.Delivery) {
		// Packets are injected at i*gap and delivered in order, so the
		// i'th delivery's latency is its timestamp minus its send time.
		latSum += d.At - norman.Duration(delivered)*(200*norman.Microsecond)
		delivered++
	})

	const dur = 20 * norman.Millisecond
	const gap = 200 * norman.Microsecond // 5k packets/s
	n := int(dur / gap)
	for i := 0; i < n; i++ {
		sys.At(norman.Duration(i)*gap, func() { sys.InjectInbound(conn, 256) })
	}
	sys.Run()

	end := sys.Now()
	cores := sys.World().CPUBusy(sys.World().Eng.Now()).Seconds() / end.Seconds()
	meanLat := norman.Duration(0)
	if delivered > 0 {
		meanLat = latSum / norman.Duration(delivered)
	}
	fmt.Printf("%-12s  %-7s  %-13.4f  %-12s  %d\n", archName, mode, cores, meanLat.String(), delivered)
}
