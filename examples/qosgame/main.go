// QoS (§2 of the paper): Bob and Charlie SSH into the server to play a
// game; Alice shapes the game's bandwidth so productive work is unaffected.
// Work-conserving per-user scheduling needs an interposition point with a
// global view AND a process view. This example configures a WFQ weighted
// 8:1 in favor of the backup, classified by user id, and shows the achieved
// split on three architectures.
package main

import (
	"fmt"

	"norman"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/timing"
)

func main() {
	fmt.Println("policy: tc qdisc wfq — backup (charlie) weight 8, game (bob) weight 1")
	fmt.Printf("%-12s  %-14s  %-14s  %s\n", "architecture", "backup (Gbps)", "game (Gbps)", "achieved ratio")
	for _, archName := range []norman.Architecture{norman.Bypass, norman.Hypervisor, norman.KOPI} {
		run(archName)
	}
}

func run(archName norman.Architecture) {
	// Contend on a 10G wire so the scheduler, not a CPU, is the bottleneck.
	model := timing.Default()
	model.WireBW = sim.Gbps(10)
	sys := norman.New(archName, norman.WithModel(model))

	until := 6 * norman.Millisecond
	winLo := until / 4
	perPort := map[uint16]uint64{}
	sys.World().Peer = func(p *packet.Packet, at sim.Time) {
		// Steady-state window only: the queue-fill ramp and the post-run
		// backlog drain would dilute the ratio.
		if p.UDP != nil && norman.Duration(at) >= winLo && norman.Duration(at) <= until {
			perPort[p.UDP.DstPort] += uint64(p.FrameLen())
		}
	}

	bob := sys.AddUser(1001, "bob")
	charlie := sys.AddUser(1002, "charlie")
	game := sys.Spawn(bob, "game")
	backup := sys.Spawn(charlie, "backup")

	gameConn, err := sys.Dial(game, 20001, 1234)
	if err != nil {
		panic(err)
	}
	backupConn, err := sys.Dial(backup, 20002, 873)
	if err != nil {
		panic(err)
	}

	err = sys.TCSet(norman.QdiscSpec{
		Kind:    "wfq",
		Weights: map[uint32]float64{1: 8, 2: 1},
		Limit:   512,
	}, map[uint32]uint32{charlie.UID: 1, bob.UID: 2})
	if err != nil {
		fmt.Printf("%-12s  tc: %v\n", archName, err)
		return
	}

	// Both users offer ~9.5G of jumbo-frame bulk; only ~10G fits.
	blast := func(c *norman.Conn) {
		var tick func()
		tick = func() {
			if sys.Now() >= until {
				return
			}
			c.SendBatch(8958, 4)
			sys.After(4*norman.Duration(7578)*norman.Nanosecond/norman.Duration(1), tick)
		}
		sys.At(0, tick)
	}
	blast(gameConn)
	blast(backupConn)
	sys.Run()

	win := (until - winLo).Seconds()
	backupG := float64(perPort[873]) * 8 / win / 1e9
	gameG := float64(perPort[1234]) * 8 / win / 1e9
	ratio := 0.0
	if gameG > 0 {
		ratio = backupG / gameG
	}
	fmt.Printf("%-12s  %-14.2f  %-14.2f  %.2f : 1\n", archName, backupG, gameG, ratio)
}
