// Port partitioning (§2 of the paper): Alice wants only Bob's postgres to
// use port 5432. Charlie's misconfigured script writes raw frames claiming
// destination port 5432 — trivial under kernel bypass, where applications
// own their rings. This example runs the attack against every architecture
// and shows where the owner-based policy is even expressible, and where it
// actually holds.
package main

import (
	"fmt"

	"norman"
	"norman/internal/packet"
	"norman/internal/sim"
)

func main() {
	fmt.Println("policy: only uid=1001 cmd=postgres may send to UDP port 5432")
	fmt.Println()
	fmt.Printf("%-12s  %-18s  %-16s  %s\n", "architecture", "policy installable", "legit delivered", "violations escaped")

	for _, archName := range norman.Architectures() {
		run(archName)
	}
}

func run(archName norman.Architecture) {
	sys := norman.New(archName)
	w := sys.World()

	var legit, violations uint64
	w.Peer = func(p *packet.Packet, at sim.Time) {
		if p.UDP == nil || p.UDP.DstPort != 5432 {
			return
		}
		if p.UDP.SrcPort == 5432 {
			legit++
		} else {
			violations++
		}
	}

	bob := sys.AddUser(1001, "bob")
	charlie := sys.AddUser(1002, "charlie")
	postgres := sys.Spawn(bob, "postgres")
	script := sys.Spawn(charlie, "script")

	pg, err := sys.Dial(postgres, 5432, 5432)
	if err != nil {
		panic(err)
	}
	rogue, err := sys.Dial(script, 33000, 9)
	if err != nil {
		panic(err)
	}

	// Alice's transactional policy: allow Bob's postgres, then drop the
	// rest of 5432. If the allow half cannot be expressed, she installs
	// neither (a blanket drop would break the legitimate user).
	installable := true
	err = sys.IPTablesAppend(norman.Output, norman.Rule{
		Proto: "udp", DstPort: 5432,
		OwnerUID: norman.UID(bob.UID), OwnerCmd: "postgres",
		Action: "accept",
	})
	if err != nil {
		installable = false
	} else if err := sys.IPTablesAppend(norman.Output, norman.Rule{
		Proto: "udp", DstPort: 5432, Action: "drop",
	}); err != nil {
		installable = false
	}

	// Legitimate postgres traffic...
	for i := 0; i < 50; i++ {
		i := i
		sys.At(norman.Duration(i)*20*norman.Microsecond, func() { pg.Send(200) })
	}
	// ...and Charlie's spoofed frames: raw packets on his own connection
	// claiming dst port 5432.
	spoof := w.Flow(33000, 5432)
	for i := 0; i < 50; i++ {
		i := i
		sys.At(norman.Duration(i)*20*norman.Microsecond, func() {
			rogue.SendRaw(w.UDPTo(spoof, 200))
		})
	}
	sys.Run()

	fmt.Printf("%-12s  %-18v  %-16d  %d\n", archName, installable, legit, violations)
}
