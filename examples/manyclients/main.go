// A server facing a fleet: 1500 remote clients each hold a connection to
// one KOPI host and send requests. This is the regime where the paper's §5
// open question bites — per-connection rings/state at the NIC — and where
// the process view still has to work: one netstat line per connection, one
// capture filter finds one client's traffic among 1500.
package main

import (
	"fmt"

	"norman"
	"norman/internal/arch"
	"norman/internal/packet"
	"norman/internal/sim"
	"norman/internal/wire"
)

const nClients = 1500

func main() {
	sys := norman.New(norman.KOPI, norman.WithRingSize(16))
	a := sys.Arch()
	w := sys.World()
	net := wire.NewNetwork(a)

	clients, err := net.ClientFleet(nClients, nil)
	if err != nil {
		panic(err)
	}

	alice := sys.AddUser(1000, "alice")
	server := sys.Spawn(alice, "server")
	serverPID := server.PID()

	// One connection per client, all owned by the server process.
	conns := make([]*arch.Conn, nClients)
	for i, ep := range clients {
		flow := packet.FlowKey{Src: w.HostIP, Dst: ep.IP,
			SrcPort: 9000, DstPort: uint16(20000 + i), Proto: packet.ProtoUDP}
		c, err := a.Connect(w.Kern.Processes()[0], flow) // server process is pid[0]
		if err != nil {
			panic(fmt.Sprintf("client %d: %v", i, err))
		}
		conns[i] = c
	}

	// The server echoes every request back to its client.
	var served uint64
	a.SetDeliver(func(c *arch.Conn, p *packet.Packet, at sim.Time) {
		served++
		resp := packet.NewUDP(w.HostMAC, p.Eth.Src, p.IP.Dst, p.IP.Src,
			p.UDP.DstPort, p.UDP.SrcPort, 200)
		a.Send(c, resp)
	})

	// Alice watches exactly one client out of 1500.
	watchIP := clients[42].IP
	capture, err := sys.Tcpdump(fmt.Sprintf("host %s", watchIP))
	if err != nil {
		panic(err)
	}

	// Every client sends 4 requests, staggered: ~0.5 Mpps per round wave.
	// (Pack them tighter — e.g. 40ns apart — and the NIC's ingress FIFO
	// overflows on cold-descriptor DMA stalls: the E3 mechanism, visible in
	// the drop counters below.)
	for i, ep := range clients {
		for r := 0; r < 4; r++ {
			ep, i, r := ep, i, r
			sys.At(norman.Duration(i*2000+r*1000000)*norman.Nanosecond, func() {
				ep.SendUDP(uint16(20000+i), 9000, 100)
			})
		}
	}
	end := sys.Run()

	var responses uint64
	for _, ep := range clients {
		responses += ep.Received
	}
	fmt.Printf("clients            : %d (one NIC connection each)\n", nClients)
	fmt.Printf("virtual time       : %v\n", end)
	fmt.Printf("requests served    : %d / %d\n", served, nClients*4)
	fmt.Printf("responses received : %d\n", responses)

	used, budget := w.NIC.SRAM()
	fmt.Printf("nic sram           : %d / %d bytes for %d connections\n", used, budget, w.NIC.ConnCount())

	rows := sys.Netstat()
	fmt.Printf("netstat            : %d rows, all pid=%d (server)\n", len(rows), serverPID)

	fmt.Printf("nic: rxwire=%d fifodrop=%d nosteer=%d ringdrop=%d verdict=%d\n",
		w.NIC.RxWire, w.NIC.RxFifoDrop, w.NIC.RxDropNoSteer, w.NIC.RxDropRing, w.NIC.RxDropVerdict)
	_, matched := capture.Counters()
	fmt.Printf("tcpdump host %s: %d frames (want 8 = 4 requests + 4 responses)\n", watchIP, matched)
}
