// Reliable transfer: the Norman library's transport (sliding window, AIMD
// congestion control, fast retransmit — §4.2 puts this *in the library*,
// since reliability needs no privileged interposition) moving 4 MB over a
// lossy wire, on the kernel stack and on KOPI. The point: under KOPI the
// transport runs at ring speed in the application while the NIC still
// interposes on every segment — here a tcpdump counts them.
package main

import (
	"fmt"

	"norman"
)

func main() {
	fmt.Printf("%-12s  %-8s  %-14s  %-12s  %-12s  %s\n",
		"architecture", "loss", "goodput(Gbps)", "retransmits", "timeouts", "segments seen by tcpdump")
	for _, archName := range []norman.Architecture{norman.KernelStack, norman.KOPI} {
		for _, loss := range []float64{0, 0.02} {
			run(archName, loss)
		}
	}
}

func run(archName norman.Architecture, loss float64) {
	sys := norman.New(archName)
	peer := sys.UseTransportPeer(5001, loss)

	alice := sys.AddUser(1000, "alice")
	app := sys.Spawn(alice, "copytool")
	conn, err := sys.DialTCP(app, 4001, 5001)
	if err != nil {
		panic(err)
	}

	// The admin's capture sees every segment of the bypass transfer —
	// where the architecture has a capture point.
	capture, capErr := sys.Tcpdump("tcp and port 5001")

	const total = 4 << 20
	stream := conn.StartTransfer(total, nil)
	sys.Run()

	if !stream.Done() {
		fmt.Printf("%-12s  transfer did not finish (received %d/%d)\n",
			archName, peer.ReceivedBytes(), total)
		return
	}
	st := stream.Stats()
	captured := "n/a"
	if capErr == nil {
		_, matched := capture.Counters()
		captured = fmt.Sprintf("%d", matched)
	}
	fmt.Printf("%-12s  %-8.2f  %-14.2f  %-12d  %-12d  %s\n",
		archName, loss, st.GoodputGbps, st.Retransmits, st.Timeouts, captured)
}
