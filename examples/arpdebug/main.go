// ARP-flood debugging (§2 of the paper, "based on a true story"): something
// on the host is spraying ARP who-has requests. Alice needs to find *which
// process*. Under raw kernel bypass she would audit every application by
// hand; with an on-path, OS-integrated interposition layer she runs one
// capture and reads the attribution off the packets — and the kernel ARP
// accounting names the culprit directly.
package main

import (
	"fmt"

	"norman"
	"norman/internal/packet"
)

func main() {
	for _, archName := range []norman.Architecture{norman.Bypass, norman.Hypervisor, norman.KOPI} {
		fmt.Printf("=== %s\n", archName)
		run(archName)
		fmt.Println()
	}
}

func run(archName norman.Architecture) {
	sys := norman.New(archName)
	sys.UseSinkPeer()

	bob := sys.AddUser(1001, "bob")
	charlie := sys.AddUser(1002, "charlie")
	web := sys.Spawn(bob, "webserver")
	leaky := sys.Spawn(charlie, "leakyd") // the buggy app

	webConn, err := sys.Dial(web, 8080, 80)
	if err != nil {
		panic(err)
	}
	leakyConn, err := sys.Dial(leaky, 9999, 99)
	if err != nil {
		panic(err)
	}

	// Alice attaches tcpdump with the filter "arp".
	capture, tapErr := sys.Tcpdump("arp")

	// Normal traffic from the web server...
	for i := 0; i < 40; i++ {
		i := i
		sys.At(norman.Duration(i)*50*norman.Microsecond, func() { webConn.Send(256) })
	}
	// ...and the flood: leakyd broadcasts ARP requests from its ring —
	// raw frames on its own connection, the freedom kernel bypass grants.
	w := sys.World()
	target := uint32(0)
	for i := 0; i < 80; i++ {
		i := i
		sys.At(norman.Duration(i)*25*norman.Microsecond, func() {
			target++
			leakyConn.SendRaw(packet.NewARPRequest(w.HostMAC, w.HostIP,
				packet.MakeIP(10, 0, byte(target>>8), byte(target))))
		})
	}
	sys.Run()

	if tapErr != nil {
		fmt.Printf("tcpdump: %v\n", tapErr)
		fmt.Println("verdict: no visibility — audit every app by hand (§2)")
		return
	}
	seen, matched := capture.Counters()
	fmt.Printf("tcpdump arp: %d frames seen, %d ARP matched\n", seen, matched)
	attributed := map[string]int{}
	for _, rec := range capture.Records() {
		attributed[rec.Attribution()]++
	}
	for who, n := range attributed {
		fmt.Printf("  %4d ARP frames from [%s]\n", n, who)
	}
	if pid, n := sys.ARPTopRequester(); n > 0 {
		fmt.Printf("kernel ARP accounting: pid %d sent %d requests\n", pid, n)
		fmt.Printf("verdict: culprit identified (leakyd pid=%d)\n", leaky.PID())
	} else {
		fmt.Println("verdict: flood visible but unattributable — still auditing apps")
	}
}
