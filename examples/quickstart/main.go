// Quickstart: build a Norman (KOPI) host, open a connection through the
// kernel control plane, install a firewall rule and a capture on the NIC,
// exchange echo traffic with a peer, and print what the administrative
// tools can see — the whole Figure-1 architecture in ~80 lines.
package main

import (
	"fmt"

	"norman"
)

func main() {
	sys := norman.New(norman.KOPI)
	sys.UseEchoPeer()

	alice := sys.AddUser(1000, "alice")
	app := sys.Spawn(alice, "quickstart")

	// Connection setup goes through the kernel (§4.3): rings are allocated
	// and the NIC is programmed with this process's trusted metadata.
	conn, err := sys.Dial(app, 40000, 7)
	if err != nil {
		panic(err)
	}

	// Admin: drop a port, capture udp traffic with attribution — both
	// execute on the NIC, configured through the kernel (§4.4).
	if err := sys.IPTablesAppend(norman.Output, norman.Rule{
		Proto: "udp", DstPort: 9999, Action: "drop",
	}); err != nil {
		panic(err)
	}
	capture, err := sys.Tcpdump("udp and port 7")
	if err != nil {
		panic(err)
	}

	echoes := 0
	conn.OnReceive(func(d norman.Delivery) {
		echoes++
		if echoes < 100 {
			conn.Send(512)
		}
	})
	conn.Send(512)
	end := sys.Run()

	fmt.Printf("architecture : %s\n", sys.ArchitectureName())
	fmt.Printf("virtual time : %v\n", end)
	fmt.Printf("echoes       : %d round trips\n", echoes)

	seen, matched := capture.Counters()
	fmt.Printf("tcpdump      : %d frames seen, %d matched filter\n", seen, matched)
	if recs := capture.Records(); len(recs) > 0 {
		fmt.Printf("first capture: %dB frame at %v  [%s]\n",
			recs[0].Pkt.FrameLen(), recs[0].At, recs[0].Attribution())
	}

	fmt.Println("netstat      :")
	for _, row := range sys.Netstat() {
		fmt.Printf("  conn %d  %-34s pid=%d uid=%d cmd=%s\n",
			row.ConnID, row.Flow, row.PID, row.UID, row.Command)
	}
}
