package norman

import (
	"fmt"

	"norman/internal/arch"
	"norman/internal/filter"
	"norman/internal/qos"
	"norman/internal/recovery"
	"norman/internal/telemetry"
)

// ErrControlPlaneDown re-exports the typed mutation-rejection error so API
// users can errors.Is against the public package.
var ErrControlPlaneDown = recovery.ErrControlPlaneDown

// EnableRecovery attaches the crash-recovery subsystem: every control-plane
// mutation (iptables, tc, dial/close) is journaled before it is applied,
// CrashControlPlane/RestartControlPlane model outages, and the reconciler
// repairs intended-vs-live divergence on restart. Idempotent; returns the
// manager either way.
func (s *System) EnableRecovery() *recovery.Manager {
	if s.rec == nil {
		s.rec = recovery.NewManager()
		if s.w.Tracer != nil {
			s.rec.SetTracer(s.w.Tracer)
		}
		if s.reg != nil {
			s.rec.RegisterMetrics(s.reg, telemetry.Labels{"arch": s.a.Name()})
		}
	}
	return s.rec
}

// Recovery returns the recovery manager, nil before EnableRecovery.
func (s *System) Recovery() *recovery.Manager { return s.rec }

// CrashControlPlane kills the control plane at the current virtual time:
// its in-memory policy state (rule lists, qdisc bindings, the admin's rule
// view) is wiped, and every mutation until RestartControlPlane fails with
// ErrControlPlaneDown. What the *dataplane* does meanwhile is the
// architecture's answer — rings keep forwarding, the kernel stack stops.
func (s *System) CrashControlPlane() error {
	if s.rec == nil {
		return fmt.Errorf("norman: crash: EnableRecovery first")
	}
	cr, ok := s.a.(arch.ControlPlaneCrasher)
	if !ok {
		return fmt.Errorf("norman: %s: %w", s.a.Name(), arch.ErrUnsupported)
	}
	s.rec.Crash(s.w.Eng.Now())
	s.rules = nil
	cr.CrashControlPlane()
	// A control plane dying mid-canary cannot supervise the new generation:
	// the upgrade manager reverts the dataplane to the proven one.
	if s.up != nil {
		s.up.OnControlPlaneCrash(s.w.Eng.Now())
	}
	return nil
}

// RestartControlPlane revives the control plane and reconciles: the journal
// is replayed into intent, live NIC/kernel/filter state is diffed against
// it, divergence is repaired, and the invariant checker proves the result.
func (s *System) RestartControlPlane() (*recovery.Report, error) {
	if s.rec == nil {
		return nil, fmt.Errorf("norman: restart: EnableRecovery first")
	}
	cr, ok := s.a.(arch.ControlPlaneCrasher)
	if !ok {
		return nil, fmt.Errorf("norman: %s: %w", s.a.Name(), arch.ErrUnsupported)
	}
	cr.RestartControlPlane()
	rep, err := s.rec.Restart(s.w.Eng.Now(), s.recoveryLive(), sysApplier{s})
	if err != nil {
		return nil, err
	}
	s.commitNICConfig()
	return rep, nil
}

// RecoverFromJournal seeds an empty journal from persisted entries (the
// normand cold-start path), marks the incarnation boundary — connections in
// the old entries belonged to processes that died with the previous daemon
// — and reconciles what remains (rules and qdisc config are re-installed;
// pre-epoch connections are reported stale, not resurrected).
func (s *System) RecoverFromJournal(entries []recovery.Entry) (*recovery.Report, error) {
	rec := s.EnableRecovery()
	if err := rec.Journal().Load(entries); err != nil {
		return nil, err
	}
	rec.MarkEpoch(s.w.Eng.Now())
	rep, err := rec.Restart(s.w.Eng.Now(), s.recoveryLive(), sysApplier{s})
	if err != nil {
		return nil, err
	}
	s.commitNICConfig()
	return rep, nil
}

// recoveryLive builds the reconciler's view of live state. The closures
// re-read the architecture on every call — a crash replaces the filter
// engine wholesale, so capturing a pointer here would diff against the dead
// incarnation's heap.
func (s *System) recoveryLive() recovery.Live {
	return recovery.Live{
		NIC:         s.w.NIC,
		Kern:        s.w.Kern,
		RingPerConn: s.a.Caps().Transfers == 1,
		RuleCount: func(hook string) int {
			f, ok := s.a.(interface{ Filter() *filter.Engine })
			if !ok {
				return 0
			}
			return len(f.Filter().Chain(hookOf(hook)).Rules)
		},
		Qdisc: func() qos.Qdisc {
			if s.a.Caps().Transfers == 1 {
				return s.w.NIC.Scheduler()
			}
			if q, ok := s.a.(interface{ Qdisc() qos.Qdisc }); ok {
				return q.Qdisc()
			}
			return nil
		},
	}
}

// Qdisc returns the live egress scheduler, nil when none is installed. It
// reads the same state the reconciler diffs, so a qdisc reinstalled from
// the journal is visible here even though no TCSet ran in this process.
func (s *System) Qdisc() qos.Qdisc {
	return s.recoveryLive().Qdisc()
}

// commitNICConfig refreshes the NIC's whole-config last-good snapshot after
// a successful control-plane mutation (or reconciliation) on ring
// architectures.
func (s *System) commitNICConfig() {
	if s.rec == nil || s.a.Caps().Transfers != 1 {
		return
	}
	s.w.NIC.CommitConfig(s.w.Eng.Now())
}

// hookOf maps the admin-facing hook name to the filter hook.
func hookOf(hook string) filter.Hook {
	if hook == Input {
		return filter.HookInput
	}
	return filter.HookOutput
}

// sysApplier is the reconciler's repair surface over a System: it reapplies
// journaled intent through the raw (non-journaling) mutation paths.
type sysApplier struct{ s *System }

// ReinstallRules recompiles the full intended rule list from scratch.
func (ap sysApplier) ReinstallRules(rules []recovery.RuleRecord) error {
	s := ap.s
	if err := s.a.FlushRules(); err != nil {
		return err
	}
	s.rules = nil
	for _, rr := range rules {
		r := recordToRule(rr)
		if err := s.applyRule(rr.Hook, r); err != nil {
			return err
		}
		s.rules = append(s.rules, installedRule{hook: rr.Hook, rule: r})
	}
	return nil
}

// ReinstallQdisc re-creates the intended scheduler.
func (ap sysApplier) ReinstallQdisc(q recovery.QdiscRecord) error {
	spec := QdiscSpec{
		Kind:       q.Kind,
		Weights:    q.Weights,
		RateBps:    q.RateBps,
		BurstBytes: q.BurstBytes,
		Limit:      q.Limit,
	}
	return ap.s.applyQdisc(spec, q.ClassOfUID)
}

// RestoreConn re-inserts a lost kernel table row under its original id.
func (ap sysApplier) RestoreConn(rec recovery.ConnRecord, id uint64) error {
	_, err := ap.s.w.Kern.RestoreConn(id, rec.PID, rec.Flow, ap.s.w.Eng.Now())
	return err
}

// RepairSteering re-installs a connection's flow-director entry.
func (ap sysApplier) RepairSteering(rec recovery.ConnRecord, id uint64) error {
	return ap.s.w.NIC.SteerFlow(rec.Flow, id)
}

// ruleToRecord converts an admin rule to its journal form.
func ruleToRecord(hook string, r Rule) *recovery.RuleRecord {
	return &recovery.RuleRecord{
		Hook:     hook,
		Proto:    r.Proto,
		SrcNet:   r.SrcNet,
		DstNet:   r.DstNet,
		SrcPort:  r.SrcPort,
		DstPort:  r.DstPort,
		OwnerUID: r.OwnerUID,
		OwnerCmd: r.OwnerCmd,
		Action:   r.Action,
		Mark:     r.Mark,
	}
}

// recordToRule converts a journal record back to the admin form.
func recordToRule(rr recovery.RuleRecord) Rule {
	return Rule{
		Proto:    rr.Proto,
		SrcNet:   rr.SrcNet,
		DstNet:   rr.DstNet,
		SrcPort:  rr.SrcPort,
		DstPort:  rr.DstPort,
		OwnerUID: rr.OwnerUID,
		OwnerCmd: rr.OwnerCmd,
		Action:   rr.Action,
		Mark:     rr.Mark,
	}
}

// gate rejects the mutation when the control plane is down; a nil manager
// (recovery not enabled) never gates.
func (s *System) gate() error {
	if s.rec == nil {
		return nil
	}
	return s.rec.Gate()
}

// record journals a mutation when recovery is enabled. The zero Entry seq
// means "not journaled".
func (s *System) record(e recovery.Entry) recovery.Entry {
	if s.rec == nil {
		return recovery.Entry{}
	}
	return s.rec.Record(s.w.Eng.Now(), e)
}

// abortRecord compensates a journaled mutation whose application failed.
func (s *System) abortRecord(e recovery.Entry) {
	if s.rec != nil && e.Seq != 0 {
		s.rec.Abort(s.w.Eng.Now(), e.Seq)
	}
}

var _ recovery.Applier = sysApplier{}
