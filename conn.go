package norman

import (
	"fmt"

	"norman/internal/arch"
	"norman/internal/packet"
	"norman/internal/recovery"
	"norman/internal/sim"
)

// Conn is an application connection: the §4.3 object. Opening one goes
// through the kernel control plane (which allocates rings and programs the
// NIC on ring-based architectures); sending and receiving afterwards touch
// only whatever dataplane the architecture provides.
type Conn struct {
	sys  *System
	c    *arch.Conn
	flow packet.FlowKey
}

// Dial opens a UDP connection from proc's local port to the peer's remote
// port (connect(2) in the paper's sketch).
func (s *System) Dial(proc *Process, localPort, remotePort uint16) (*Conn, error) {
	flow := s.kernFlow(localPort, remotePort)
	return s.dial(proc, flow)
}

// DialTCP opens a TCP-keyed connection (for reliable transfers via
// StartTransfer; the stream machinery itself runs in the library).
func (s *System) DialTCP(proc *Process, localPort, remotePort uint16) (*Conn, error) {
	flow := s.kernFlow(localPort, remotePort)
	flow.Proto = packet.ProtoTCP
	return s.dial(proc, flow)
}

// dial runs the journaled connection setup: conn.open is written before the
// kernel/NIC work, conn.bind (carrying the kernel-assigned id) after it
// succeeds. A crash between the two leaves a visibly incomplete pair the
// reconciler reports instead of resurrecting. With the overload governor
// enabled, admission control runs first: a typed AdmissionError (wrapping
// ErrAdmission) refuses the connection before any kernel or NIC state is
// touched, so rejection is free and leaves nothing to reconcile.
func (s *System) dial(proc *Process, flow packet.FlowKey) (*Conn, error) {
	if err := s.gate(); err != nil {
		return nil, fmt.Errorf("norman: dial %s: %w", flow, err)
	}
	if s.gov != nil {
		if err := s.gov.AdmitConn(s.w.Kern.TenantOf(proc.UID())); err != nil {
			return nil, fmt.Errorf("norman: dial %s: %w", flow, err)
		}
	}
	open := s.record(recovery.Entry{Op: recovery.OpConnOpen, Conn: &recovery.ConnRecord{
		Flow: flow, PID: proc.PID(), UID: proc.UID(), Command: proc.Command(),
	}})
	c, err := s.a.Connect(proc.p, flow)
	if err != nil {
		s.abortRecord(open)
		if s.gov != nil {
			s.gov.ReleaseConn(s.w.Kern.TenantOf(proc.UID()))
		}
		return nil, fmt.Errorf("norman: dial %s: %w", flow, err)
	}
	if open.Seq != 0 {
		s.record(recovery.Entry{Op: recovery.OpConnBind, Ref: open.Seq, ConnID: c.Info.ID})
	}
	s.commitNICConfig()
	return &Conn{sys: s, c: c, flow: flow}, nil
}

// Close releases the connection. Like every control-plane mutation it is
// journaled and refused while the control plane is down — the dataplane
// keeps the rings alive until teardown can be recorded.
func (c *Conn) Close() error {
	s := c.sys
	if err := s.gate(); err != nil {
		return err
	}
	e := s.record(recovery.Entry{Op: recovery.OpConnClose, ConnID: c.c.Info.ID})
	if err := s.a.Close(c.c); err != nil {
		s.abortRecord(e)
		return err
	}
	if s.gov != nil {
		s.gov.ReleaseConn(s.w.Kern.TenantOf(c.c.Info.UID))
	}
	s.commitNICConfig()
	return nil
}

// ID returns the kernel connection id.
func (c *Conn) ID() uint64 { return c.c.Info.ID }

// Send transmits one datagram with the given payload size.
func (c *Conn) Send(payload int) {
	c.sys.a.Send(c.c, c.sys.w.UDPTo(c.flow, payload))
}

// SendBatch transmits a burst, letting the architecture amortize what it
// can (doorbells, syscalls).
func (c *Conn) SendBatch(payload, count int) {
	pkts := make([]*packet.Packet, count)
	for i := range pkts {
		pkts[i] = c.sys.w.UDPTo(c.flow, payload)
	}
	c.sys.a.SendBatch(c.c, pkts)
}

// SendRaw transmits an arbitrary pre-built frame — the kernel-bypass
// freedom (and hazard) the paper's §2 scenarios hinge on: on ring-based
// architectures nothing stops an application from emitting frames that
// do not match its connection.
func (c *Conn) SendRaw(p *packet.Packet) {
	c.sys.a.Send(c.c, p)
}

// OnReceive installs the delivery handler for this connection.
func (c *Conn) OnReceive(fn func(Delivery)) {
	c.sys.mux.Handle(c.c, func(_ *arch.Conn, p *packet.Packet, at sim.Time) {
		d := Delivery{Payload: p.PayloadLen, At: sim.Duration(at)}
		if p.IP != nil {
			port := uint16(0)
			if p.UDP != nil {
				port = p.UDP.SrcPort
			}
			d.From = fmt.Sprintf("%s:%d", p.IP.Src, port)
		}
		fn(d)
	})
}

// SetBlocking selects blocking receive (true) or polling (false). Blocking
// needs an architecture where the kernel can observe arrivals (§2's process
// scheduling scenario); where it cannot, an error wrapping
// arch.ErrUnsupported is returned and the connection stays in poll mode.
func (c *Conn) SetBlocking(block bool) error {
	mode := arch.RxPoll
	if block {
		mode = arch.RxBlock
	}
	return c.sys.a.SetRxMode(c.c, mode)
}

// Delivered returns how many packets this connection's application has
// consumed.
func (c *Conn) Delivered() uint64 { return c.c.Delivered }

// SetRateLimit installs a per-connection egress rate limit (bytes/second)
// enforced by the NIC's pacing engine — the SENIC/PicNIC-style offload the
// paper folds into KOPI. It requires a ring-dataplane architecture (the
// connection must own NIC queues); rate <= 0 clears the limit.
func (c *Conn) SetRateLimit(bytesPerSecond float64) error {
	if c.c.NC == nil {
		return fmt.Errorf("norman: rate limit: %w", arch.ErrUnsupported)
	}
	// One millisecond of burst, floored at a full frame.
	burst := bytesPerSecond / 1000
	if burst < 1514 {
		burst = 1514
	}
	return c.sys.w.NIC.SetConnRate(c.c.Info.ID, bytesPerSecond, burst)
}
