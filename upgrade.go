package norman

import (
	"fmt"

	"norman/internal/overlay"
	"norman/internal/recovery"
	"norman/internal/telemetry"
	"norman/internal/upgrade"
)

// EnableLiveUpgrade attaches the live-upgrade subsystem (DESIGN.md §12):
// staged A/B pipeline generations on the NIC, state handover across the epoch
// flip, a canary window with automatic rollback, and hot-restart adoption.
// Policy state (filters, qos) is merged into the handover snapshot from the
// control plane's own records, and upgrade intent is journaled when recovery
// is enabled. Idempotent; returns the manager either way.
func (s *System) EnableLiveUpgrade(cfg upgrade.Config) *upgrade.Manager {
	if s.up == nil {
		s.up = upgrade.New(s.w.Eng, s.w.NIC, cfg)
		s.up.SetStateSource(func(snap *upgrade.Snapshot) {
			for _, ir := range s.rules {
				snap.Filters = append(snap.Filters, *ruleToRecord(ir.hook, ir.rule))
			}
			if s.rec != nil {
				if in, err := recovery.Replay(s.rec.Journal().Entries()); err == nil {
					snap.Qos = in.Qdisc
				}
			}
		})
		if s.rec != nil {
			s.up.SetRecovery(s.rec)
		}
		if s.w.Tracer != nil {
			s.up.SetTracer(s.w.Tracer)
		}
		if s.reg != nil {
			s.up.RegisterMetrics(s.reg, telemetry.Labels{"arch": s.a.Name()})
		}
	}
	return s.up
}

// Upgrade returns the live-upgrade manager, nil before EnableLiveUpgrade.
func (s *System) Upgrade() *upgrade.Manager { return s.up }

// StageUpgrade freezes the handover snapshot and stages a new overlay
// generation (ingress, egress — either may be nil to carry the hook empty)
// into the NIC's shadow bank. Mutations gate on the control plane being up,
// like every other admin verb.
func (s *System) StageUpgrade(ing, eg *overlay.Program) error {
	if err := s.gate(); err != nil {
		return err
	}
	up := s.EnableLiveUpgrade(upgrade.Config{})
	return up.Stage(s.w.Eng.Now(), ing, eg)
}

// CutOverUpgrade activates the staged generation: ingress pauses into the
// bounded buffer, the epoch flips at a packet boundary, compatible flow-cache
// entries warm-transfer, and the canary window opens. Returns the pause
// duration (the flip's whole dataplane cost).
func (s *System) CutOverUpgrade() (Duration, error) {
	if err := s.gate(); err != nil {
		return 0, err
	}
	if s.up == nil {
		return 0, fmt.Errorf("norman: cutover: EnableLiveUpgrade first")
	}
	return s.up.CutOver(s.w.Eng.Now())
}

// RollbackUpgrade forces an immediate revert to the retained generation
// while a canary window is open.
func (s *System) RollbackUpgrade(reason string) error {
	if s.up == nil {
		return fmt.Errorf("norman: rollback: EnableLiveUpgrade first")
	}
	return s.up.Rollback(s.w.Eng.Now(), reason)
}

// StartLiveUpgrade is the one-shot ctl path (upgrade.start): it restages the
// currently live overlay chains as a new generation — a same-policy upgrade,
// the safest possible flip — and cuts over immediately. The canary window
// then commits or rolls back on its own.
func (s *System) StartLiveUpgrade() error {
	if err := s.gate(); err != nil {
		return err
	}
	up := s.EnableLiveUpgrade(upgrade.Config{})
	cfg := s.w.NIC.SnapshotConfig(s.w.Eng.Now())
	if err := up.Stage(s.w.Eng.Now(), cfg.Ingress, cfg.Egress); err != nil {
		return err
	}
	_, err := up.CutOver(s.w.Eng.Now())
	return err
}

// UpgradeStatus is a point-in-time snapshot of the live-upgrade subsystem,
// shaped for the ctl upgrade.status op and nnetstat -upgrade.
type UpgradeStatus struct {
	Enabled        bool   `json:"enabled"`
	Phase          string `json:"phase"`
	Generation     uint64 `json:"generation"`
	Watching       bool   `json:"watching"`
	Upgrades       uint64 `json:"upgrades"`
	Commits        uint64 `json:"commits"`
	Rollbacks      uint64 `json:"rollbacks"`
	CanarySamples  uint64 `json:"canary_samples"`
	CanaryBreaches uint64 `json:"canary_breaches"`
	WarmEntries    uint64 `json:"warm_entries"`
	Adoptions      uint64 `json:"adoptions"`
	PauseBuffered  uint64 `json:"pause_buffered"`
	PauseDrops     uint64 `json:"pause_drops"`
	LastRollback   string `json:"last_rollback,omitempty"`
}

// UpgradeStatus snapshots the live-upgrade subsystem; Enabled is false
// before EnableLiveUpgrade (graceful degradation, like HealthStatus).
func (s *System) UpgradeStatus() UpgradeStatus {
	if s.up == nil {
		return UpgradeStatus{}
	}
	return UpgradeStatus{
		Enabled:        true,
		Phase:          s.up.Phase().String(),
		Generation:     s.up.Generation(),
		Watching:       s.up.Running(),
		Upgrades:       s.up.Upgrades,
		Commits:        s.up.Commits,
		Rollbacks:      s.up.Rollbacks,
		CanarySamples:  s.up.CanarySamples,
		CanaryBreaches: s.up.CanaryBreaches,
		WarmEntries:    s.up.WarmEntries,
		Adoptions:      s.up.Adoptions,
		PauseBuffered:  s.w.NIC.RxPauseBuffered,
		PauseDrops:     s.w.NIC.RxPauseDrop,
		LastRollback:   s.up.LastRollbackReason(),
	}
}
