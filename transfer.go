package norman

import (
	"norman/internal/sim"
	"norman/internal/transport"
)

// Stream is a reliable transfer running in the Norman library over one
// connection (§4.2: transport is unprivileged dataplane functionality, so it
// lives in the application's address space, not the interposition layer).
type Stream struct {
	s *transport.Stream
}

// TransferStats summarizes a stream.
type TransferStats struct {
	GoodputGbps     float64
	Retransmits     uint64
	FastRetransmits uint64
	Timeouts        uint64
	SegmentsSent    uint64
	CwndMaxBytes    float64
	SRTT            Duration
}

// StartTransfer begins a reliable transfer of total bytes on the connection
// and calls done when the last byte is acknowledged. The remote end must be
// a transport responder (see UseTransportPeer).
func (c *Conn) StartTransfer(total uint32, done func()) *Stream {
	s := transport.New(c.sys.a, c.c, c.flow, c.sys.mux, transport.Config{
		TotalBytes: total,
		Done: func(at sim.Time) {
			if done != nil {
				done()
			}
		},
	})
	s.Start()
	return &Stream{s: s}
}

// Done reports whether the transfer completed.
func (st *Stream) Done() bool { return st.s.Done() }

// Stats returns the transfer's behavior summary.
func (st *Stream) Stats() TransferStats {
	raw := st.s.Stats
	return TransferStats{
		GoodputGbps:     raw.Goodput(),
		Retransmits:     raw.Retransmits,
		FastRetransmits: raw.FastRetransmits,
		Timeouts:        raw.Timeouts,
		SegmentsSent:    raw.SegmentsSent,
		CwndMaxBytes:    raw.CwndMax,
		SRTT:            st.s.SRTT(),
	}
}

// TransportPeer is the remote endpoint of reliable transfers, with an
// optional loss model for exercising recovery.
type TransportPeer struct {
	r *transport.Responder
}

// UseTransportPeer installs a transport responder as the wire peer for
// streams targeting dstPort, dropping data segments with the given
// probability.
func (s *System) UseTransportPeer(dstPort uint16, dataLossProb float64) *TransportPeer {
	r := transport.NewResponder(s.a, dstPort, 1)
	r.DataLossProb = dataLossProb
	s.w.Peer = r.Recv
	return &TransportPeer{r: r}
}

// ReceivedBytes returns in-order bytes delivered at the peer.
func (p *TransportPeer) ReceivedBytes() uint64 { return p.r.Received }

// DroppedData returns how many data segments the loss model discarded.
func (p *TransportPeer) DroppedData() uint64 { return p.r.DataDrops }
