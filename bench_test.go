package norman_test

// One benchmark per experiment in the DESIGN.md index. Each bench runs the
// full-scale driver once per b.N iteration and reports the experiment table
// on the first iteration; `go test -bench . -benchmem` therefore regenerates
// every table the reproduction promises. cmd/kopibench wraps the same
// drivers for ad-hoc runs.
//
// The drivers fan their independent worlds across a worker pool bounded at
// GOMAXPROCS (NORMAN_WORKERS=1 restores sequential execution for
// single-core-comparable wall-clock numbers). The tables are byte-identical
// either way; only the measured wall time changes.

import (
	"fmt"
	"testing"

	"norman/internal/experiments"
	"norman/internal/mem"
	"norman/internal/sim"
)

// benchScale is the configuration benches run at; 1.0 is the full
// experiment (tests use smaller scales for speed).
const benchScale = experiments.Scale(1.0)

func BenchmarkE1Dataplanes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE1(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl) // stdout: the bench log truncates long tables
		}
	}
}

func BenchmarkE2Capabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE2(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl) // stdout: the bench log truncates long tables
		}
	}
}

func BenchmarkE3ConnScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE3(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl) // stdout: the bench log truncates long tables
		}
	}
}

func BenchmarkE4Reconfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE4(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl) // stdout: the bench log truncates long tables
		}
	}
}

func BenchmarkE5Exhaustion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE5(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl) // stdout: the bench log truncates long tables
		}
	}
}

func BenchmarkE6QoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE6(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl) // stdout: the bench log truncates long tables
		}
	}
}

func BenchmarkE7Blocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE7(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl) // stdout: the bench log truncates long tables
		}
	}
}

func BenchmarkE8OwnerFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE8(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl) // stdout: the bench log truncates long tables
		}
	}
}

func BenchmarkE9Faults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE9(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl)
		}
	}
}

func BenchmarkE10Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE10(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl)
		}
	}
}

func BenchmarkE11Overload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE11(benchScale)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl)
		}
	}
}

func BenchmarkE12ShardedScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE12(benchScale, 8)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl)
		}
	}
}

func BenchmarkE13TenantIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE13(benchScale, 1)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl)
		}
	}
}

func BenchmarkE14FlowCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE14(benchScale, 1)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl)
		}
	}
}

func BenchmarkE15Health(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE15(benchScale, 1)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl)
		}
	}
}

func BenchmarkE16Upgrade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tbl := experiments.RunE16(benchScale, 1)
		if i == 0 {
			fmt.Printf("\n%s\n", tbl)
		}
	}
}

// TestEngineHotPathZeroAllocs guards the engine dispatch loop against
// allocation regressions: a warmed heap must schedule and fire events
// without touching the allocator.
func TestEngineHotPathZeroAllocs(t *testing.T) {
	eng := sim.NewEngine()
	// Warm the event heap once; steady-state dispatch reuses its capacity.
	for i := 0; i < 64; i++ {
		eng.At(sim.Time(i), func() {})
	}
	eng.Run()
	fn := func() {}
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			eng.After(sim.Nanosecond, fn)
		}
		eng.Run()
	}); n != 0 {
		t.Fatalf("engine hot path allocates %.1f/op", n)
	}
}

// TestBatchedDrainZeroAllocs guards the sharded scale path's per-burst
// loop — ring pop, flyweight slab updates, ring refill, batched fired
// credit — at zero allocations.
func TestBatchedDrainZeroAllocs(t *testing.T) {
	eng := sim.NewEngine()
	ring := mem.NewBurstRing(512, 0)
	slab := mem.NewConnSlab(256, 0)
	scratch := make([]mem.PktRef, 256)
	for i := 0; i < 256; i++ {
		ring.Push(mem.PktRef{Conn: uint32(i), Len: 300})
	}
	drain := func() {
		m := ring.PopBurst(scratch)
		for i := range scratch[:m] {
			d := &scratch[i]
			slab.RxPkts[d.Conn]++
			slab.RxBytes[d.Conn] += uint64(d.Len)
		}
		ring.PushBurst(scratch[:m])
		eng.AddFired(m - 1)
	}
	eng.At(0, drain)
	eng.Run()
	if n := testing.AllocsPerRun(100, func() {
		eng.After(sim.Nanosecond, drain)
		eng.Run()
	}); n != 0 {
		t.Fatalf("batched ring drain allocates %.1f/op", n)
	}
}
