package norman_test

import (
	"os"
	"regexp"
	"testing"

	"norman"
	"norman/internal/ctl"
	"norman/internal/faults"
	"norman/internal/health"
	"norman/internal/mem"
	"norman/internal/overload"
	"norman/internal/qos"
	"norman/internal/sniff"
	"norman/internal/telemetry"
	"norman/internal/transport"
	"norman/internal/upgrade"
)

// TestObservabilityDocMatchesRegistry is the drift gate between
// OBSERVABILITY.md and the code: every `norman_<layer>_<name>` metric the
// document's tables mention must exist in a fully populated registry, so a
// rename or removal cannot leave the documentation stale, and a metric
// cannot ship undocumented names in its own table rows without existing.
func TestObservabilityDocMatchesRegistry(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	names := regexp.MustCompile("`(norman_[a-z0-9_]+)`").FindAllStringSubmatch(string(doc), -1)
	if len(names) < 40 {
		t.Fatalf("OBSERVABILITY.md documents only %d metric names — inventory tables missing?", len(names))
	}

	reg := populateFullRegistry(t)
	for _, m := range names {
		if !reg.Has(m[1]) {
			t.Errorf("OBSERVABILITY.md documents %s but no such metric is registered", m[1])
		}
	}
}

// populateFullRegistry builds one registry carrying every layer the repo
// exports: the world's own metrics (host, sim, nic, mem, trace) via
// EnableTelemetry, plus ctl, qos, mem rings/queues, sniff, transport and
// faults registered the way the daemon and the E9 collector register them.
func populateFullRegistry(t *testing.T) *telemetry.Registry {
	t.Helper()
	sys := norman.New(norman.KOPI)
	sys.EnableRecovery()                  // before EnableTelemetry so recovery.* metrics register
	sys.EnableOverload(overload.Config{}) // likewise for overload.* metrics
	// Tenant isolation before EnableTelemetry so the per-tenant gauges and
	// the NIC scheduler's tenant counters register.
	if err := sys.EnableTenantIsolation(map[uint32]int{1: 3, 2: 1}); err != nil {
		t.Fatal(err)
	}
	// Flow cache before EnableTelemetry so the flowcache.* series and the
	// per-tenant partition counters register.
	if err := sys.EnableFlowCache(256); err != nil {
		t.Fatal(err)
	}
	// Health monitor before EnableTelemetry so the health.* series and the
	// per-component state gauges register.
	sys.EnableHealth(health.Config{})
	// Live upgrade before EnableTelemetry so the upgrade.* counters and the
	// generation/phase gauges register.
	sys.EnableLiveUpgrade(upgrade.Config{})
	reg := sys.EnableTelemetry()
	w := sys.World()

	ctl.NewServer(sys).RegisterMetrics(reg, nil)
	qos.RegisterMetrics(reg, nil, qos.NewPFIFO(64))
	mem.NewRing(16, 0).RegisterMetrics(reg, nil, "test")
	mem.NewNotifyQueue(16).RegisterMetrics(reg, nil)
	sniff.NewTap(nil, 16).RegisterMetrics(reg, nil)
	transport.RegisterStreamMetrics(reg, nil, func() []*transport.Stream { return nil })
	transport.NewResponder(sys.Arch(), 9, 1).RegisterResponderMetrics(reg, nil)
	faults.New(w.Eng, w.NIC, w.LLC, faults.Config{}).RegisterMetrics(reg, nil)
	return reg
}
