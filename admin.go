package norman

import (
	"fmt"

	"norman/internal/filter"
	"norman/internal/kernel"
	"norman/internal/packet"
	"norman/internal/qos"
	"norman/internal/recovery"
	"norman/internal/sim"
	"norman/internal/sniff"
)

// Rule is a firewall rule in administrator-facing form. Zero fields are
// wildcards. Owner fields require an architecture with a process view.
type Rule struct {
	Proto    string // "udp", "tcp", "" = any
	SrcNet   string // "10.0.0.0/8", "" = any
	DstNet   string
	SrcPort  uint16 // 0 = any
	DstPort  uint16
	OwnerUID *uint32
	OwnerCmd string
	Action   string // "accept", "drop", "count", "log", "mark"
	Mark     uint32
}

// Hook names.
const (
	Input  = "INPUT"
	Output = "OUTPUT"
)

// UID returns a pointer-typed uid for Rule.OwnerUID.
func UID(u uint32) *uint32 { return &u }

func (r Rule) compile() (*filter.Rule, error) {
	out := &filter.Rule{OwnerUID: r.OwnerUID, OwnerCmd: r.OwnerCmd, MarkVal: r.Mark}
	switch r.Proto {
	case "udp":
		out.Proto = filter.Proto(packet.ProtoUDP)
	case "tcp":
		out.Proto = filter.Proto(packet.ProtoTCP)
	case "":
	default:
		return nil, fmt.Errorf("norman: unknown proto %q", r.Proto)
	}
	if r.SrcPort != 0 {
		out.SrcPorts = filter.Port(r.SrcPort)
	}
	if r.DstPort != 0 {
		out.DstPorts = filter.Port(r.DstPort)
	}
	parseNet := func(s string) (*filter.Prefix, error) {
		if s == "" {
			return nil, nil
		}
		var a, b, c, d byte
		var bits int
		if _, err := fmt.Sscanf(s, "%d.%d.%d.%d/%d", &a, &b, &c, &d, &bits); err != nil {
			return nil, fmt.Errorf("norman: bad CIDR %q", s)
		}
		return filter.Net(packet.MakeIP(a, b, c, d), bits), nil
	}
	var err error
	if out.SrcNet, err = parseNet(r.SrcNet); err != nil {
		return nil, err
	}
	if out.DstNet, err = parseNet(r.DstNet); err != nil {
		return nil, err
	}
	switch r.Action {
	case "accept", "":
		out.Action = filter.ActAccept
	case "drop":
		out.Action = filter.ActDrop
	case "count":
		out.Action = filter.ActCount
	case "log":
		out.Action = filter.ActLog
	case "mark":
		out.Action = filter.ActMark
	default:
		return nil, fmt.Errorf("norman: unknown action %q", r.Action)
	}
	return out, nil
}

// IPTablesAppend installs a rule at the architecture's interposition point
// (the `iptables -A` of the reproduction). On architectures without one, or
// without a process view for owner rules, an error explains which §2
// scenario just became unenforceable. With recovery enabled the intent is
// journaled write-ahead: a crash after the journal write but before the
// install is repaired by the reconciler, and an install failure is
// compensated with an abort record.
func (s *System) IPTablesAppend(hook string, r Rule) error {
	if err := s.gate(); err != nil {
		return err
	}
	e := s.record(recovery.Entry{Op: recovery.OpRuleAppend, Rule: ruleToRecord(hook, r)})
	if err := s.applyRule(hook, r); err != nil {
		s.abortRecord(e)
		return err
	}
	s.rules = append(s.rules, installedRule{hook: hook, rule: r})
	s.commitNICConfig()
	return nil
}

// applyRule is the raw (journal-free) install path; the reconciler replays
// through it.
func (s *System) applyRule(hook string, r Rule) error {
	fr, err := r.compile()
	if err != nil {
		return err
	}
	return s.a.InstallRule(hookOf(hook), fr)
}

// IPTablesFlush removes all rules.
func (s *System) IPTablesFlush() error {
	if err := s.gate(); err != nil {
		return err
	}
	e := s.record(recovery.Entry{Op: recovery.OpRuleFlush})
	if err := s.a.FlushRules(); err != nil {
		s.abortRecord(e)
		return err
	}
	s.rules = nil
	s.commitNICConfig()
	return nil
}

// RuleStatus is one installed rule with its hit counter (`iptables -L -v`).
type RuleStatus struct {
	Hook string
	Rule Rule
	Hits uint64
}

// IPTablesList returns the installed rules with hit counters where the
// architecture tracks them.
func (s *System) IPTablesList() []RuleStatus {
	out := make([]RuleStatus, 0, len(s.rules))
	perHook := map[string]int{}
	for _, ir := range s.rules {
		idx := perHook[ir.hook]
		perHook[ir.hook]++
		h := filter.HookOutput
		if ir.hook == Input {
			h = filter.HookInput
		}
		hits, _ := s.a.RuleHits(h, idx)
		out = append(out, RuleStatus{Hook: ir.hook, Rule: ir.rule, Hits: hits})
	}
	return out
}

// QdiscSpec configures the egress scheduler (`tc qdisc add`).
type QdiscSpec struct {
	Kind string // "wfq", "drr", "prio", "pfifo", "tbf"

	// Weights maps class id -> weight (wfq) or quantum bytes (drr).
	Weights map[uint32]float64
	// RateBps and BurstBytes parameterize tbf.
	RateBps    float64
	BurstBytes float64
	Limit      int
}

// TCSet installs an egress qdisc with a classifier that assigns classes by
// owning user id (the cgroup-style classification of the paper's QoS
// scenario): ClassOfUID maps uid -> class; unmapped users get class 0.
// With recovery enabled the full spec (including the uid->class map) is
// journaled, so the reconciler can rebuild an identical scheduler.
func (s *System) TCSet(spec QdiscSpec, classOfUID map[uint32]uint32) error {
	if err := s.gate(); err != nil {
		return err
	}
	kind := spec.Kind
	if kind == "" {
		kind = "wfq" // applyQdisc's default; journal the resolved kind
	}
	e := s.record(recovery.Entry{Op: recovery.OpQdiscSet, Qdisc: &recovery.QdiscRecord{
		Kind:       kind,
		Weights:    spec.Weights,
		ClassOfUID: classOfUID,
		RateBps:    spec.RateBps,
		BurstBytes: spec.BurstBytes,
		Limit:      spec.Limit,
	}})
	if err := s.applyQdisc(spec, classOfUID); err != nil {
		s.abortRecord(e)
		return err
	}
	s.commitNICConfig()
	return nil
}

// applyQdisc is the raw (journal-free) install path; the reconciler replays
// through it.
func (s *System) applyQdisc(spec QdiscSpec, classOfUID map[uint32]uint32) error {
	var q qos.Qdisc
	switch spec.Kind {
	case "wfq", "":
		wf := qos.NewWFQ(spec.Limit)
		for class, weight := range spec.Weights {
			wf.SetWeight(class, weight)
		}
		q = wf
	case "drr":
		d := qos.NewDRR(spec.Limit, 1514)
		for class, weight := range spec.Weights {
			d.SetQuantum(class, int(weight))
		}
		q = d
	case "prio":
		q = qos.NewPrio(3, spec.Limit)
	case "pfifo":
		q = qos.NewPFIFO(spec.Limit)
	case "tbf":
		q = qos.NewTBF(qos.NewPFIFO(spec.Limit), spec.RateBps, spec.BurstBytes)
	default:
		return fmt.Errorf("norman: unknown qdisc %q", spec.Kind)
	}
	classify := func(p *packet.Packet) uint32 {
		if !p.Meta.TrustedMeta {
			return 0
		}
		return classOfUID[p.Meta.UID]
	}
	if err := s.a.SetQdisc(q, classify); err != nil {
		return err
	}
	// With the overload governor active, the same class weights that drive
	// egress scheduling also drive ingress shedding: under saturation the NIC
	// drops low-weight classes first. Installed here (the raw path) so the
	// crash reconciler's qdisc replay re-arms shedding too.
	if s.gov != nil && len(spec.Weights) > 0 {
		s.gov.InstallShedding(func(uid uint32) uint32 { return classOfUID[uid] }, spec.Weights)
	}
	return nil
}

// Capture is a running tcpdump session.
type Capture struct {
	tap *sniff.Tap
}

// Tcpdump attaches a capture with a tcpdump-style filter expression
// (including the Norman uid/pid/cmd extensions where the architecture has a
// process view).
func (s *System) Tcpdump(expr string) (*Capture, error) {
	e, err := sniff.Parse(expr)
	if err != nil {
		return nil, err
	}
	tap, err := s.a.AttachTap(e)
	if err != nil {
		return nil, err
	}
	return &Capture{tap: tap}, nil
}

// Records returns the retained captures.
func (c *Capture) Records() []sniff.Record { return c.tap.Records() }

// Counters returns packets seen and matched by the capture.
func (c *Capture) Counters() (seen, matched uint64) {
	seen, matched, _ = c.tap.Counters()
	return seen, matched
}

// NetstatRow is one line of the netstat view: the flow joined with its
// owning process — the join that off-host interposition cannot produce.
type NetstatRow struct {
	ConnID  uint64
	Flow    string
	PID     uint32
	UID     uint32
	Command string
	Opened  Duration
}

// Netstat lists connections with process attribution from the kernel table.
func (s *System) Netstat() []NetstatRow {
	var out []NetstatRow
	for _, ci := range s.w.Kern.Conns() {
		out = append(out, NetstatRow{
			ConnID:  ci.ID,
			Flow:    ci.Flow.String(),
			PID:     ci.PID,
			UID:     ci.UID,
			Command: ci.Command,
			Opened:  sim.Duration(ci.Opened),
		})
	}
	return out
}

// ARPEntry is one kernel ARP cache line.
type ARPEntry = kernel.ARPEntry

// ARPTable returns the kernel ARP cache — empty under architectures where
// the kernel never sees dataplane ARP (the §2 debugging scenario).
func (s *System) ARPTable() []*ARPEntry { return s.w.Kern.ARP().Entries() }

// ARPTopRequester returns the process that originated the most ARP requests
// visible to the kernel, with its count — how Alice traces the flood.
func (s *System) ARPTopRequester() (pid uint32, count uint64) {
	return s.w.Kern.ARP().TopRequester()
}
